//! The storage fault boundary: a minimal filesystem trait the whole
//! store writes through, with a production passthrough ([`RealVfs`]) and
//! a seeded, deterministic fault injector ([`FaultVfs`]).
//!
//! This is the storage sibling of the server crate's `ChaosProxy`: where
//! the proxy corrupts a *network* between two healthy endpoints, the
//! `FaultVfs` corrupts the *disk* under a healthy store. The fault
//! families are the ones real edge flash actually produces:
//!
//! * **ENOSPC** — a full (or worn-out) partition rejecting writes;
//! * **transient / persistent EIO** — read or write failures that clear
//!   after one retry, or stick around for a streak of operations;
//! * **fsync latency spikes** — an fsync that succeeds but stalls, the
//!   signature of a flash translation layer doing garbage collection;
//! * **lying fsync + torn write** — fsync reports success but the data
//!   never reached stable storage; the next power loss reveals a torn
//!   frame. Undetectable at write time *by definition* — only the CRC
//!   recovery scan at the next open can catch it;
//! * **rename failures** — the commit step of an atomic write failing.
//!
//! **Determinism.** Every fault decision is a pure function of
//! `(seed, path, op, op-index)` where the op-index counts invocations of
//! that operation on that path. No wall clock, no global ordering: two
//! runs issuing the same per-path operation sequences under the same
//! seed inject byte-for-byte the same faults, which is what makes a
//! failing storage-chaos run replayable from a single number. Paths are
//! keyed relative to [`FaultVfs::with_base`] when set, so the schedule
//! survives relocating the store root.

use std::collections::HashMap;
use std::fmt::Debug;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// One directory entry as reported by [`Vfs::read_dir`].
#[derive(Debug, Clone)]
pub struct VfsEntry {
    /// Full path of the entry.
    pub path: PathBuf,
    /// Whether the entry is a regular file (as opposed to a directory).
    pub is_file: bool,
}

/// The filesystem operations the store needs. Everything the store (and
/// [`crate::atomic_write_with`]) touches on disk goes through this
/// trait, so a single injected implementation can fail any operation on
/// any path — there is no side door to the real filesystem.
pub trait Vfs: Debug + Send + Sync {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (truncating) `path` and writes all of `bytes`. No fsync.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes the file at `path` to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Flushes a directory so a rename inside it is durable. Directory
    /// handles are not fsyncable on all platforms; a no-op off Unix.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Recursively removes the directory at `path`.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists the entries of `dir`.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<VfsEntry>>;
}

/// The production filesystem: straight passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<VfsEntry>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
            out.push(VfsEntry {
                path: entry.path(),
                is_file,
            });
        }
        Ok(out)
    }
}

/// Which operation a fault landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VfsOp {
    /// A whole-file read.
    Read,
    /// A create-and-write.
    Write,
    /// A file fsync.
    Fsync,
    /// A rename (the atomic-write commit step).
    Rename,
}

impl VfsOp {
    fn code(self) -> u64 {
        match self {
            VfsOp::Read => 1,
            VfsOp::Write => 2,
            VfsOp::Fsync => 3,
            VfsOp::Rename => 4,
        }
    }
}

/// A fault the [`FaultVfs`] injected, recorded in its event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A write failed with "no space left on device".
    Enospc,
    /// A read/write failed with an I/O error; `remaining` further
    /// operations of the same kind on the same path will also fail
    /// (0 = purely transient: the immediate retry succeeds).
    Eio {
        /// Streak length still ahead after this failure.
        remaining: u32,
    },
    /// An fsync stalled for the configured spike before succeeding.
    FsyncDelay,
    /// An fsync returned success without persisting: the file was torn
    /// down to `kept_bytes` to model what the next power loss exposes.
    LyingFsyncTornWrite {
        /// Bytes that actually reached "stable storage".
        kept_bytes: u64,
    },
    /// A rename failed (the atomic commit step).
    RenameFail,
}

/// One entry of the [`FaultVfs`] event log: which fault hit which
/// operation, where, at which per-path op index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Path the operation targeted (relative to the configured base).
    pub path: PathBuf,
    /// The operation.
    pub op: VfsOp,
    /// Invocation index of `(path, op)` at the time of the fault.
    pub index: u64,
    /// What was injected.
    pub fault: InjectedFault,
}

/// Fault probabilities, all expressed per 1024 draws (0 = never,
/// 1024 = always). Derived decisions are pure in `(seed, path, op,
/// op-index)`.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of every derivation.
    pub seed: u64,
    /// Chance a write fails with ENOSPC.
    pub enospc_per_1024: u16,
    /// Chance a read/write starts an EIO streak.
    pub eio_per_1024: u16,
    /// Maximum EIO streak length (minimum 1; 1 = purely transient).
    pub eio_streak_max: u32,
    /// Chance an fsync lies (reports success, tears the file).
    pub lying_fsync_per_1024: u16,
    /// Chance an fsync stalls for [`FaultPlan::fsync_delay`].
    pub fsync_delay_per_1024: u16,
    /// Duration of an injected fsync latency spike.
    pub fsync_delay: Duration,
    /// Chance a rename fails.
    pub rename_fail_per_1024: u16,
}

impl FaultPlan {
    /// A plan with every fault disabled; enable families via `with_*`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            enospc_per_1024: 0,
            eio_per_1024: 0,
            eio_streak_max: 1,
            lying_fsync_per_1024: 0,
            fsync_delay_per_1024: 0,
            fsync_delay: Duration::from_millis(5),
            rename_fail_per_1024: 0,
        }
    }

    /// Enables ENOSPC on writes.
    pub fn with_enospc(mut self, per_1024: u16) -> Self {
        self.enospc_per_1024 = per_1024;
        self
    }

    /// Enables EIO streaks on reads/writes. `streak_max` of 1 makes every
    /// EIO transient; larger values mix in persistent failures.
    pub fn with_eio(mut self, per_1024: u16, streak_max: u32) -> Self {
        self.eio_per_1024 = per_1024;
        self.eio_streak_max = streak_max.max(1);
        self
    }

    /// Enables lying fsyncs (success reported, file torn).
    pub fn with_lying_fsync(mut self, per_1024: u16) -> Self {
        self.lying_fsync_per_1024 = per_1024;
        self
    }

    /// Enables fsync latency spikes of `delay`.
    pub fn with_fsync_delay(mut self, per_1024: u16, delay: Duration) -> Self {
        self.fsync_delay_per_1024 = per_1024;
        self.fsync_delay = delay;
        self
    }

    /// Enables rename failures.
    pub fn with_rename_fail(mut self, per_1024: u16) -> Self {
        self.rename_fail_per_1024 = per_1024;
        self
    }
}

/// Per-`(path, op)` derivation state: the invocation counter plus the
/// index an active EIO streak runs to.
#[derive(Debug, Default, Clone, Copy)]
struct OpState {
    next_index: u64,
    eio_fail_below: u64,
}

/// A [`Vfs`] that injects a deterministic, seeded fault schedule on top
/// of an inner filesystem (the real one by default). See the module docs
/// for the fault families and the determinism contract.
///
/// The schedule itself is pure; [`FaultVfs::set_active`] is the *fault
/// window*: while inactive every operation passes straight through (the
/// per-path op counters still advance, so reopening the window resumes
/// the same schedule). Tests flip it to model a disk that fails for a
/// while and then heals.
#[derive(Debug)]
pub struct FaultVfs {
    inner: RealVfs,
    plan: FaultPlan,
    base: Option<PathBuf>,
    active: AtomicBool,
    state: Mutex<FaultState>,
}

#[derive(Debug, Default)]
struct FaultState {
    ops: HashMap<(PathBuf, VfsOp), OpState>,
    events: Vec<FaultEvent>,
}

/// SplitMix64 finalizer: turns a structured key into uniform bits.
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected fault: {kind}"))
}

impl FaultVfs {
    /// A fault injector over the real filesystem.
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            inner: RealVfs,
            plan,
            base: None,
            active: AtomicBool::new(true),
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Keys the schedule on paths relative to `base`, so the same seed
    /// replays the same faults regardless of where the store root lives.
    pub fn with_base(mut self, base: impl Into<PathBuf>) -> Self {
        self.base = Some(base.into());
        self
    }

    /// Opens/closes the fault window. Inactive, every operation passes
    /// through untouched (counters still advance).
    pub fn set_active(&self, active: bool) {
        self.active.store(active, Ordering::SeqCst);
    }

    /// Whether the fault window is open.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    /// Drains the log of injected faults so far.
    pub fn take_events(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.lock().events)
    }

    /// Number of faults injected so far (without draining the log).
    pub fn fault_count(&self) -> usize {
        self.lock().events.len()
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        // Poison tolerance: the map holds plain counters; no invariant
        // spans a panic window.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn key_path(&self, path: &Path) -> PathBuf {
        match &self.base {
            Some(base) => path.strip_prefix(base).unwrap_or(path).to_path_buf(),
            None => path.to_path_buf(),
        }
    }

    /// Uniform bits for `(seed, path, op, index, salt)`.
    fn draw(&self, key: &Path, op: VfsOp, index: u64, salt: u64) -> u64 {
        let mut h = self.plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in key.to_string_lossy().as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= op.code().wrapping_mul(0x2545_F491_4F6C_DD1D);
        h ^= index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= salt << 17;
        mix(h)
    }

    fn hit(&self, bits: u64, per_1024: u16) -> bool {
        per_1024 > 0 && (bits >> 32) % 1024 < u64::from(per_1024)
    }

    /// Advances the `(path, op)` counter and decides what (if anything)
    /// to inject at this invocation. EIO streaks are decided first: an
    /// index inside an active streak keeps failing; a fresh hit opens a
    /// streak whose length is itself derived.
    fn decide(&self, path: &Path, op: VfsOp) -> Option<(PathBuf, u64, InjectedFault)> {
        let key = self.key_path(path);
        let mut st = self.lock();
        let entry = st.ops.entry((key.clone(), op)).or_default();
        let index = entry.next_index;
        entry.next_index += 1;
        if !self.is_active() {
            return None;
        }
        if matches!(op, VfsOp::Read | VfsOp::Write) {
            if index < entry.eio_fail_below {
                let remaining = (entry.eio_fail_below - index - 1) as u32;
                let fault = InjectedFault::Eio { remaining };
                st.events.push(FaultEvent {
                    path: key.clone(),
                    op,
                    index,
                    fault,
                });
                return Some((key, index, fault));
            }
            let bits = self.draw(&key, op, index, 1);
            if self.hit(bits, self.plan.eio_per_1024) {
                let streak = 1 + (bits % u64::from(self.plan.eio_streak_max)) as u32;
                entry.eio_fail_below = index + u64::from(streak);
                let fault = InjectedFault::Eio {
                    remaining: streak - 1,
                };
                st.events.push(FaultEvent {
                    path: key.clone(),
                    op,
                    index,
                    fault,
                });
                return Some((key, index, fault));
            }
        }
        let fault = match op {
            VfsOp::Write => {
                let bits = self.draw(&key, op, index, 2);
                self.hit(bits, self.plan.enospc_per_1024)
                    .then_some(InjectedFault::Enospc)
            }
            VfsOp::Fsync => {
                let lie = self.draw(&key, op, index, 3);
                if self.hit(lie, self.plan.lying_fsync_per_1024) {
                    // Keep a derived fraction of the file: 10–90% of it.
                    Some(InjectedFault::LyingFsyncTornWrite {
                        kept_bytes: 10 + (lie >> 40) % 81,
                    })
                } else {
                    let spike = self.draw(&key, op, index, 4);
                    self.hit(spike, self.plan.fsync_delay_per_1024)
                        .then_some(InjectedFault::FsyncDelay)
                }
            }
            VfsOp::Rename => {
                let bits = self.draw(&key, op, index, 5);
                self.hit(bits, self.plan.rename_fail_per_1024)
                    .then_some(InjectedFault::RenameFail)
            }
            VfsOp::Read => None,
        }?;
        st.events.push(FaultEvent {
            path: key.clone(),
            op,
            index,
            fault,
        });
        Some((key, index, fault))
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if let Some((_, _, InjectedFault::Eio { .. })) = self.decide(path, VfsOp::Read) {
            return Err(injected("EIO on read"));
        }
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.decide(path, VfsOp::Write) {
            Some((_, _, InjectedFault::Enospc)) => {
                Err(injected("ENOSPC (no space left on device)"))
            }
            Some((_, _, InjectedFault::Eio { .. })) => Err(injected("EIO on write")),
            _ => self.inner.write(path, bytes),
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        match self.decide(path, VfsOp::Fsync) {
            Some((_, _, InjectedFault::LyingFsyncTornWrite { kept_bytes })) => {
                // Report success but tear the file: only `kept_bytes`
                // percent of it "reached stable storage". The caller
                // proceeds to rename the torn frame into place; nothing
                // before the next recovery scan can know.
                if let Ok(full) = self.inner.read(path) {
                    let keep = (full.len() as u64 * kept_bytes / 100) as usize;
                    let _ = self.inner.write(path, &full[..keep]);
                }
                Ok(())
            }
            Some((_, _, InjectedFault::FsyncDelay)) => {
                std::thread::sleep(self.plan.fsync_delay);
                self.inner.fsync(path)
            }
            _ => self.inner.fsync(path),
        }
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.fsync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some((_, _, InjectedFault::RenameFail)) = self.decide(to, VfsOp::Rename) {
            return Err(injected("rename failed"));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_dir_all(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<VfsEntry>> {
        self.inner.read_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_pure_in_seed_path_and_index() {
        let a = FaultVfs::new(FaultPlan::new(7).with_enospc(512).with_eio(256, 3));
        let b = FaultVfs::new(FaultPlan::new(7).with_enospc(512).with_eio(256, 3));
        let p = Path::new("store/5/1.ckpt");
        let mut decisions_a = Vec::new();
        let mut decisions_b = Vec::new();
        for _ in 0..64 {
            decisions_a.push(a.decide(p, VfsOp::Write).map(|(_, i, f)| (i, f)));
            decisions_b.push(b.decide(p, VfsOp::Write).map(|(_, i, f)| (i, f)));
        }
        assert_eq!(decisions_a, decisions_b);
        // A different seed produces a different schedule.
        let c = FaultVfs::new(FaultPlan::new(8).with_enospc(512).with_eio(256, 3));
        let decisions_c: Vec<_> = (0..64)
            .map(|_| c.decide(p, VfsOp::Write).map(|(_, i, f)| (i, f)))
            .collect();
        assert_ne!(decisions_a, decisions_c);
    }

    #[test]
    fn inactive_window_injects_nothing_but_counts_on() {
        let v = FaultVfs::new(FaultPlan::new(3).with_enospc(1024));
        let p = Path::new("x/1.ckpt");
        v.set_active(false);
        for _ in 0..8 {
            assert!(v.decide(p, VfsOp::Write).is_none());
        }
        v.set_active(true);
        // Counters advanced while inactive: the next decision is index 8.
        let (_, index, _) = v.decide(p, VfsOp::Write).expect("always-on ENOSPC");
        assert_eq!(index, 8);
    }

    #[test]
    fn base_prefix_makes_schedules_location_independent() {
        let a = FaultVfs::new(FaultPlan::new(11).with_enospc(512)).with_base("/tmp/run-a");
        let b = FaultVfs::new(FaultPlan::new(11).with_enospc(512)).with_base("/var/run-b");
        let mut da = Vec::new();
        let mut db = Vec::new();
        for _ in 0..64 {
            da.push(
                a.decide(Path::new("/tmp/run-a/3/9.ckpt"), VfsOp::Write)
                    .map(|(_, i, f)| (i, f)),
            );
            db.push(
                b.decide(Path::new("/var/run-b/3/9.ckpt"), VfsOp::Write)
                    .map(|(_, i, f)| (i, f)),
            );
        }
        assert_eq!(da, db);
    }

    #[test]
    fn eio_streaks_fail_then_clear() {
        let v = FaultVfs::new(FaultPlan::new(5).with_eio(200, 4));
        let p = Path::new("s/2.ckpt");
        let mut saw_streak = false;
        let mut i = 0u64;
        while i < 512 {
            match v.decide(p, VfsOp::Read) {
                Some((_, _, InjectedFault::Eio { remaining })) if remaining > 0 => {
                    saw_streak = true;
                    // The streak must play out exactly `remaining` more times.
                    for left in (0..remaining).rev() {
                        i += 1;
                        match v.decide(p, VfsOp::Read) {
                            Some((_, _, InjectedFault::Eio { remaining: r })) => {
                                assert_eq!(r, left)
                            }
                            other => panic!("streak broke early: {other:?}"),
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        assert!(saw_streak, "seed 5 never produced a multi-op streak");
    }
}
