//! The generational on-disk store and its recovery scan.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/
//!   <session-id>/            one directory per session (decimal id)
//!     1.ckpt  2.ckpt  ...    CRC-framed checkpoint generations
//!   manifest/
//!     1.ckpt  2.ckpt  ...    CRC-framed quarantine-ledger generations
//! ```
//!
//! **Write path.** Every write — checkpoint or manifest — goes through
//! [`atomic_write`]: the frame is written to a `*.tmp` sibling, fsynced,
//! atomically renamed into place, and the directory fsynced so the rename
//! itself survives power loss. Generations are append-only (a new file
//! per write, never an in-place overwrite) and pruned to
//! [`StoreConfig::keep_generations`] afterwards, so at every instant at
//! least one fully-written previous generation exists on disk.
//!
//! **Recovery scan.** [`Store::open`] walks the tree: stale `*.tmp` files
//! (a writer died mid-write) are deleted; frames that fail CRC
//! validation (torn, truncated, bit-flipped) are deleted so they can
//! never shadow a good older generation; each session's newest surviving
//! generation is additionally decoded through
//! [`DriftPipeline::from_bytes`], falling back to older generations until
//! one decodes. The worst case after any crash is therefore the loss of
//! one checkpoint interval — never the model. What the scan found and
//! repaired is tallied in a [`RecoveryReport`] so callers can surface
//! disk trouble instead of hiding it.
//!
//! **Fault boundary.** Every filesystem operation goes through the
//! [`Vfs`] trait — [`crate::vfs::RealVfs`] in production,
//! [`crate::vfs::FaultVfs`] under storage-chaos tests — so a failing
//! disk is injectable at any single operation.

use crate::frame::{self, FrameError, STORE_VERSION};
use crate::vfs::{RealVfs, Vfs};
use seqdrift_core::DriftPipeline;
use seqdrift_linalg::wire::{Reader, Writer, MAGIC as WIRE_MAGIC, VERSION as WIRE_VERSION};
use seqdrift_linalg::Real;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Directory name of the store-level manifest (quarantine ledger).
const MANIFEST_DIR: &str = "manifest";
/// Directory name of the fleet-wide federated merged model. Non-numeric,
/// so the per-session recovery/resume scans never mistake it for a
/// session directory.
const FEDERATED_DIR: &str = "federated";
/// Directory name of the per-session federation reputation book. Like
/// `federated/`, non-numeric so session scans skip it.
const REPUTATION_DIR: &str = "reputation";
/// Payload kind of a serialised manifest (the session checkpoints inside
/// frames are `seqdrift_core::persist` blobs with their own kind).
const KIND_MANIFEST: u16 = 32;
/// Payload kind of a serialised reputation book.
const KIND_REPUTATION: u16 = 33;

/// Store-level failures.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed; `context` names what was being attempted.
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A frame on disk was written by a newer store (or wire) version.
    /// Refusing to touch it: old code must not reinterpret or delete
    /// newer data.
    NewerVersion {
        /// The offending file.
        path: PathBuf,
        /// The version found on disk.
        found: u16,
    },
    /// Bad store configuration.
    InvalidConfig(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::NewerVersion { path, found } => write!(
                f,
                "{} was written by newer store/wire version {found} (this build supports {})",
                path.display(),
                STORE_VERSION
            ),
            StoreError::InvalidConfig(msg) => write!(f, "invalid store config: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(io::Error) -> StoreError {
    let context = context.into();
    move |source| StoreError::Io { context, source }
}

/// One quarantine-ledger entry, persisted in the store manifest so a
/// permanently quarantined session stays quarantined across process
/// restarts. The reason code is defined by the fleet layer
/// (`seqdrift_fleet::QuarantineReason`); the store treats it opaquely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Why the session was quarantined (fleet-defined code).
    pub reason_code: u8,
    /// Restart-budget restores consumed before quarantine.
    pub restarts_spent: u64,
}

/// One federation-reputation entry, persisted in a reserved store
/// manifest so contributor trust survives process restarts. The
/// semantics of `trust` (decay/recovery/floor) are defined by the
/// federation layer; the store persists it opaquely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReputationEntry {
    /// Trust score in `[0, 1]`; 1.0 is a contributor that has never been
    /// flagged as an outlier.
    pub trust: Real,
    /// Merge rounds in which this session was scored an outlier.
    pub outlier_rounds: u64,
    /// Merge rounds in which this session contributed cleanly.
    pub clean_rounds: u64,
}

impl Default for ReputationEntry {
    fn default() -> Self {
        ReputationEntry {
            trust: 1.0,
            outlier_rounds: 0,
            clean_rounds: 0,
        }
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Checkpoint generations kept per session (and for the manifest).
    /// At least 2, so one fully-written fallback always survives the
    /// newest write being torn by a crash.
    pub keep_generations: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            keep_generations: 2,
        }
    }
}

impl StoreConfig {
    /// Overrides the per-session generation keep-count (minimum 2).
    pub fn with_keep_generations(mut self, keep: usize) -> Self {
        self.keep_generations = keep;
        self
    }
}

/// What the [`Store::open`] recovery scan found and repaired. All zeros
/// after a clean shutdown on a healthy disk; anything else is real disk
/// trouble that the caller should surface, not hide.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sessions with at least one surviving, decodable checkpoint.
    pub sessions_recovered: usize,
    /// Frame generations that survived the scan (sessions + manifest +
    /// federated).
    pub generations_kept: usize,
    /// Torn/truncated/bit-flipped/mislabelled frames deleted.
    pub corrupt_frames_dropped: usize,
    /// Stale `*.tmp` files (writer died mid-write) deleted.
    pub stale_temps_deleted: usize,
}

impl RecoveryReport {
    /// Whether the scan had to repair anything.
    pub fn repaired_anything(&self) -> bool {
        self.corrupt_frames_dropped > 0 || self.stale_temps_deleted > 0
    }
}

/// Per-session bookkeeping discovered by the recovery scan.
#[derive(Debug, Default)]
struct Slot {
    /// Generation files present on disk (survivors of the scan).
    gens: BTreeSet<u64>,
    /// Newest generation that framed AND decoded at open (or was written
    /// by this process). `None` until the first successful write/decode.
    newest_valid: Option<u64>,
}

#[derive(Debug, Default)]
struct Inner {
    sessions: HashMap<u64, Slot>,
    manifest_gens: BTreeSet<u64>,
    ledger: BTreeMap<u64, LedgerEntry>,
    federated_gens: BTreeSet<u64>,
    reputation_gens: BTreeSet<u64>,
    reputations: BTreeMap<u64, ReputationEntry>,
    recovery: RecoveryReport,
}

/// The crash-safe checkpoint store. All methods take `&self`; internal
/// state is mutex-guarded so worker threads can flush checkpoints
/// concurrently.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    keep: usize,
    vfs: Arc<dyn Vfs>,
    inner: Mutex<Inner>,
}

/// Writes `bytes` to `path` through the real filesystem. See
/// [`atomic_write_with`] for the contract.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with(&RealVfs, path, bytes)
}

/// Writes `bytes` to `path` so that a crash at any instant leaves either
/// the old file or the new file — never a torn mix: the bytes go to a
/// `*.tmp` sibling first, are fsynced, renamed over the target, and the
/// parent directory is fsynced so the rename itself is on stable storage.
/// On any failure the temp sibling is removed before returning, so an
/// error never leaves an orphan behind.
pub fn atomic_write_with(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "atomic_write: path has no file name",
        )
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = dir.join(tmp_name);
    if let Err(e) = vfs.write(&tmp, bytes).and_then(|()| vfs.fsync(&tmp)) {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = vfs.rename(&tmp, path) {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    vfs.fsync_dir(&dir)
}

/// Returns the wire-format version claimed by a `seqdrift_core::persist`
/// payload, when the payload carries the wire magic. Used by the
/// recovery scan to distinguish "payload from a newer library" (a typed
/// hard error) from "payload corrupted before framing" (fall back).
fn payload_wire_version(payload: &[u8]) -> Option<u16> {
    if payload.len() >= 6 && &payload[0..4] == WIRE_MAGIC {
        Some(u16::from_le_bytes([payload[4], payload[5]]))
    } else {
        None
    }
}

impl Store {
    /// Opens (creating if absent) a store at `root` with default config
    /// and runs the recovery scan.
    pub fn open(root: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(root, StoreConfig::default())
    }

    /// Opens a store with explicit configuration. See the module docs for
    /// the recovery-scan contract.
    pub fn open_with(root: impl AsRef<Path>, cfg: StoreConfig) -> Result<Store, StoreError> {
        Store::open_with_vfs(root, cfg, Arc::new(RealVfs))
    }

    /// Opens a store with an explicit filesystem — the injection point
    /// for storage-chaos testing with [`crate::vfs::FaultVfs`].
    pub fn open_with_vfs(
        root: impl AsRef<Path>,
        cfg: StoreConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Store, StoreError> {
        if cfg.keep_generations < 2 {
            return Err(StoreError::InvalidConfig(
                "keep_generations must be at least 2 (one fallback must survive a torn write)",
            ));
        }
        let root = root.as_ref().to_path_buf();
        vfs.create_dir_all(&root)
            .map_err(io_err(format!("creating store root {}", root.display())))?;
        let store = Store {
            root,
            keep: cfg.keep_generations,
            vfs,
            inner: Mutex::new(Inner::default()),
        };
        store.recover()?;
        Ok(store)
    }

    /// Poison tolerance: the inner map holds plain bookkeeping whose
    /// invariants never span a panic window.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// What the open-time recovery scan found and repaired.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.lock().recovery
    }

    fn session_dir(&self, session: u64) -> PathBuf {
        self.root.join(session.to_string())
    }

    fn frame_path(dir: &Path, generation: u64) -> PathBuf {
        dir.join(format!("{generation}.ckpt"))
    }

    /// The recovery scan: delete stale temps, drop CRC-invalid frames,
    /// and find each session's newest generation that frames and decodes.
    fn recover(&self) -> Result<(), StoreError> {
        let mut inner = self.lock();
        *inner = Inner::default();
        let mut report = RecoveryReport::default();
        let entries = self.vfs.read_dir(&self.root).map_err(io_err(format!(
            "scanning store root {}",
            self.root.display()
        )))?;
        for entry in entries {
            let path = entry.path;
            let name = match path.file_name() {
                Some(n) => n.to_string_lossy().into_owned(),
                None => continue,
            };
            if entry.is_file {
                // Only frames live in subdirectories; root-level files are
                // either stale temps or foreign — delete temps, skip the rest.
                if name.ends_with(".tmp") {
                    self.vfs
                        .remove_file(&path)
                        .map_err(io_err(format!("deleting stale temp {}", path.display())))?;
                    report.stale_temps_deleted += 1;
                }
                continue;
            }
            if name == MANIFEST_DIR {
                let gens = self.scan_frame_dir(
                    &path,
                    |payload| decode_manifest(payload).is_some(),
                    &mut report,
                )?;
                report.generations_kept += gens.0.len();
                inner.manifest_gens = gens.0;
                if let Some(newest) = gens.1 {
                    let frame_path = Store::frame_path(&path, newest);
                    let bytes = self
                        .vfs
                        .read(&frame_path)
                        .map_err(io_err(format!("reading manifest {}", frame_path.display())))?;
                    if let Ok((_, payload)) = frame::decode(&bytes) {
                        if let Some(ledger) = decode_manifest(payload) {
                            inner.ledger = ledger;
                        }
                    }
                }
                continue;
            }
            if name == REPUTATION_DIR {
                let gens = self.scan_frame_dir(
                    &path,
                    |payload| decode_reputations(payload).is_some(),
                    &mut report,
                )?;
                report.generations_kept += gens.0.len();
                inner.reputation_gens = gens.0;
                if let Some(newest) = gens.1 {
                    let frame_path = Store::frame_path(&path, newest);
                    let bytes = self.vfs.read(&frame_path).map_err(io_err(format!(
                        "reading reputation book {}",
                        frame_path.display()
                    )))?;
                    if let Ok((_, payload)) = frame::decode(&bytes) {
                        if let Some(book) = decode_reputations(payload) {
                            inner.reputations = book;
                        }
                    }
                }
                continue;
            }
            if name == FEDERATED_DIR {
                // Same payload contract as session checkpoints: the
                // merged model is a full pipeline blob.
                let (gens, _) = self.scan_frame_dir(
                    &path,
                    |payload| DriftPipeline::from_bytes(payload).is_ok(),
                    &mut report,
                )?;
                report.generations_kept += gens.len();
                inner.federated_gens = gens;
                continue;
            }
            let Ok(session) = name.parse::<u64>() else {
                // Not a session directory; leave foreign data alone.
                continue;
            };
            let (gens, newest_valid) = self.scan_frame_dir(
                &path,
                |payload| DriftPipeline::from_bytes(payload).is_ok(),
                &mut report,
            )?;
            report.generations_kept += gens.len();
            if newest_valid.is_some() {
                report.sessions_recovered += 1;
            }
            inner.sessions.insert(session, Slot { gens, newest_valid });
        }
        inner.recovery = report;
        Ok(())
    }

    /// Scans one generation directory: deletes `*.tmp` and CRC-invalid
    /// frames, and returns the surviving generation set plus the newest
    /// generation whose payload passes `validate`. A frame claiming a
    /// newer store version (with a clean checksum) or carrying a payload
    /// with a newer wire version is a typed hard error — recovery must
    /// not delete or reinterpret data from the future.
    fn scan_frame_dir(
        &self,
        dir: &Path,
        validate: impl Fn(&[u8]) -> bool,
        report: &mut RecoveryReport,
    ) -> Result<(BTreeSet<u64>, Option<u64>), StoreError> {
        let mut gens: BTreeSet<u64> = BTreeSet::new();
        let entries = self
            .vfs
            .read_dir(dir)
            .map_err(io_err(format!("scanning {}", dir.display())))?;
        for entry in entries {
            let path = entry.path;
            let name = match path.file_name() {
                Some(n) => n.to_string_lossy().into_owned(),
                None => continue,
            };
            if name.ends_with(".tmp") {
                self.vfs
                    .remove_file(&path)
                    .map_err(io_err(format!("deleting stale temp {}", path.display())))?;
                report.stale_temps_deleted += 1;
                continue;
            }
            let Some(stem) = name.strip_suffix(".ckpt") else {
                continue;
            };
            let Ok(generation) = stem.parse::<u64>() else {
                continue;
            };
            let bytes = self
                .vfs
                .read(&path)
                .map_err(io_err(format!("reading frame {}", path.display())))?;
            match frame::decode(&bytes) {
                Ok((frame_gen, payload)) => {
                    if let Some(v) = payload_wire_version(payload) {
                        if v > WIRE_VERSION {
                            return Err(StoreError::NewerVersion { path, found: v });
                        }
                    }
                    // The generation in the frame header is authoritative;
                    // a renamed file cannot smuggle an old payload forward.
                    if frame_gen == generation {
                        gens.insert(generation);
                    } else {
                        self.vfs.remove_file(&path).map_err(io_err(format!(
                            "deleting mislabelled frame {}",
                            path.display()
                        )))?;
                        report.corrupt_frames_dropped += 1;
                    }
                }
                Err(FrameError::NewerVersion(found)) => {
                    return Err(StoreError::NewerVersion { path, found });
                }
                Err(_) => {
                    // Torn, truncated or bit-flipped: delete so it can
                    // never shadow the good generation below it.
                    self.vfs
                        .remove_file(&path)
                        .map_err(io_err(format!("deleting corrupt frame {}", path.display())))?;
                    report.corrupt_frames_dropped += 1;
                }
            }
        }
        // Newest generation whose payload also validates (decodes).
        let mut newest_valid = None;
        for &generation in gens.iter().rev() {
            let path = Store::frame_path(dir, generation);
            let bytes = self
                .vfs
                .read(&path)
                .map_err(io_err(format!("reading frame {}", path.display())))?;
            if let Ok((_, payload)) = frame::decode(&bytes) {
                if validate(payload) {
                    newest_valid = Some(generation);
                    break;
                }
            }
        }
        Ok((gens, newest_valid))
    }

    /// Writes one checkpoint payload for `session` as a new generation.
    /// The write is atomic and durable (temp + fsync + rename + dir
    /// fsync); older generations beyond the keep-count are pruned only
    /// after the new one is safely in place. Returns the generation
    /// number written.
    pub fn put(&self, session: u64, payload: &[u8]) -> Result<u64, StoreError> {
        let mut inner = self.lock();
        let slot = inner.sessions.entry(session).or_default();
        let generation = slot.gens.iter().next_back().copied().unwrap_or(0) + 1;
        let dir = self.session_dir(session);
        self.vfs
            .create_dir_all(&dir)
            .map_err(io_err(format!("creating session dir {}", dir.display())))?;
        let path = Store::frame_path(&dir, generation);
        atomic_write_with(&*self.vfs, &path, &frame::encode(generation, payload))
            .map_err(io_err(format!("writing checkpoint {}", path.display())))?;
        slot.gens.insert(generation);
        slot.newest_valid = Some(generation);
        let excess: Vec<u64> = {
            let n = slot.gens.len().saturating_sub(self.keep);
            slot.gens.iter().take(n).copied().collect()
        };
        for old in excess {
            let old_path = Store::frame_path(&dir, old);
            self.vfs
                .remove_file(&old_path)
                .map_err(io_err(format!("pruning {}", old_path.display())))?;
            slot.gens.remove(&old);
        }
        Ok(generation)
    }

    /// Loads the newest frame-valid payload of `session`, walking older
    /// generations if the preferred one fails validation at read time
    /// (bit rot between open and load). `None` when the session has no
    /// surviving checkpoint.
    pub fn load(&self, session: u64) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        self.load_validated(session, |_| true)
    }

    /// Loads the newest payload of `session` that both frames and passes
    /// `validate`, walking generations newest to oldest.
    pub fn load_validated(
        &self,
        session: u64,
        validate: impl Fn(&[u8]) -> bool,
    ) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        let gens: Vec<u64> = {
            let inner = self.lock();
            match inner.sessions.get(&session) {
                Some(slot) => slot.gens.iter().rev().copied().collect(),
                None => return Ok(None),
            }
        };
        let dir = self.session_dir(session);
        for generation in gens {
            let path = Store::frame_path(&dir, generation);
            let bytes = match self.vfs.read(&path) {
                Ok(b) => b,
                Err(_) => continue,
            };
            if let Ok((_, payload)) = frame::decode(&bytes) {
                if validate(payload) {
                    return Ok(Some((generation, payload.to_vec())));
                }
            }
        }
        Ok(None)
    }

    /// Loads and decodes the newest generation of `session` that survives
    /// both the CRC frame and `DriftPipeline::from_bytes` — the full
    /// recovery contract in one call.
    pub fn load_pipeline(&self, session: u64) -> Result<Option<(u64, DriftPipeline)>, StoreError> {
        let loaded = self.load_validated(session, |payload| {
            DriftPipeline::from_bytes(payload).is_ok()
        })?;
        Ok(loaded.and_then(|(generation, payload)| {
            DriftPipeline::from_bytes(&payload)
                .ok()
                .map(|p| (generation, p))
        }))
    }

    /// Sessions with at least one surviving checkpoint generation,
    /// sorted ascending.
    pub fn sessions(&self) -> Vec<u64> {
        let inner = self.lock();
        let mut out: Vec<u64> = inner
            .sessions
            .iter()
            .filter(|(_, slot)| !slot.gens.is_empty())
            .map(|(&id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Deletes every checkpoint generation of `session` and clears its
    /// ledger entry, persisting the updated manifest.
    pub fn remove_session(&self, session: u64) -> Result<(), StoreError> {
        let removed = {
            let mut inner = self.lock();
            inner.sessions.remove(&session);
            let dir = self.session_dir(session);
            match self.vfs.remove_dir_all(&dir) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(io_err(format!("removing session dir {}", dir.display()))(e));
                }
            }
            inner.ledger.remove(&session)
        };
        let Some(removed) = removed else {
            return Ok(());
        };
        let result = self.write_manifest();
        if result.is_err() {
            // Keep memory consistent with disk, so a later retry of this
            // call re-attempts the manifest write instead of no-opping on
            // the "already absent" fast path.
            self.lock().ledger.insert(session, removed);
        }
        result
    }

    /// The persisted quarantine ledger.
    pub fn ledger(&self) -> BTreeMap<u64, LedgerEntry> {
        self.lock().ledger.clone()
    }

    /// Records `session` as permanently quarantined and persists the
    /// manifest through the same atomic generational path as checkpoints.
    pub fn set_quarantined(&self, session: u64, entry: LedgerEntry) -> Result<(), StoreError> {
        let prev = {
            let mut inner = self.lock();
            if inner.ledger.get(&session) == Some(&entry) {
                return Ok(());
            }
            inner.ledger.insert(session, entry)
        };
        let result = self.write_manifest();
        if result.is_err() {
            // Roll back so a retry of the same entry is not swallowed by
            // the dedup fast path above while the disk copy still lacks it.
            let mut inner = self.lock();
            match prev {
                Some(p) => inner.ledger.insert(session, p),
                None => inner.ledger.remove(&session),
            };
        }
        result
    }

    /// Clears `session` from the quarantine ledger (the id was replaced
    /// with a fresh session) and persists the manifest.
    pub fn clear_quarantined(&self, session: u64) -> Result<(), StoreError> {
        let removed = {
            let mut inner = self.lock();
            inner.ledger.remove(&session)
        };
        let Some(removed) = removed else {
            return Ok(());
        };
        let result = self.write_manifest();
        if result.is_err() {
            self.lock().ledger.insert(session, removed);
        }
        result
    }

    /// Writes the fleet-wide federated merged model (a full pipeline
    /// blob) as a new durable generation under the non-numeric
    /// `federated/` directory, through the same atomic generational path
    /// as session checkpoints. Returns the generation written.
    pub fn put_federated(&self, payload: &[u8]) -> Result<u64, StoreError> {
        let mut inner = self.lock();
        let generation = inner
            .federated_gens
            .iter()
            .next_back()
            .copied()
            .unwrap_or(0)
            + 1;
        let dir = self.root.join(FEDERATED_DIR);
        self.vfs
            .create_dir_all(&dir)
            .map_err(io_err(format!("creating federated dir {}", dir.display())))?;
        let path = Store::frame_path(&dir, generation);
        atomic_write_with(&*self.vfs, &path, &frame::encode(generation, payload)).map_err(
            io_err(format!("writing federated model {}", path.display())),
        )?;
        inner.federated_gens.insert(generation);
        let excess: Vec<u64> = {
            let n = inner.federated_gens.len().saturating_sub(self.keep);
            inner.federated_gens.iter().take(n).copied().collect()
        };
        for old in excess {
            let old_path = Store::frame_path(&dir, old);
            self.vfs
                .remove_file(&old_path)
                .map_err(io_err(format!("pruning {}", old_path.display())))?;
            inner.federated_gens.remove(&old);
        }
        Ok(generation)
    }

    /// Loads the newest federated merged-model payload that frames and
    /// decodes as a pipeline, walking generations newest to oldest.
    /// `None` when no merged model has ever been persisted (or none
    /// survived).
    pub fn load_federated(&self) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        let gens: Vec<u64> = {
            let inner = self.lock();
            inner.federated_gens.iter().rev().copied().collect()
        };
        let dir = self.root.join(FEDERATED_DIR);
        for generation in gens {
            let path = Store::frame_path(&dir, generation);
            let bytes = match self.vfs.read(&path) {
                Ok(b) => b,
                Err(_) => continue,
            };
            if let Ok((_, payload)) = frame::decode(&bytes) {
                if DriftPipeline::from_bytes(payload).is_ok() {
                    return Ok(Some((generation, payload.to_vec())));
                }
            }
        }
        Ok(None)
    }

    /// Persists the full federation reputation book as a new durable
    /// generation under the reserved `reputation/` directory — the same
    /// atomic generational path as the quarantine manifest. In-memory
    /// state is updated only after the write lands, so a failed write
    /// leaves the last durable book authoritative and a retry is never
    /// swallowed by a stale cache. Returns the generation written.
    pub fn put_reputations(
        &self,
        book: &BTreeMap<u64, ReputationEntry>,
    ) -> Result<u64, StoreError> {
        let mut inner = self.lock();
        let payload = encode_reputations(book);
        let generation = inner
            .reputation_gens
            .iter()
            .next_back()
            .copied()
            .unwrap_or(0)
            + 1;
        let dir = self.root.join(REPUTATION_DIR);
        self.vfs
            .create_dir_all(&dir)
            .map_err(io_err(format!("creating reputation dir {}", dir.display())))?;
        let path = Store::frame_path(&dir, generation);
        atomic_write_with(&*self.vfs, &path, &frame::encode(generation, &payload)).map_err(
            io_err(format!("writing reputation book {}", path.display())),
        )?;
        inner.reputations = book.clone();
        inner.reputation_gens.insert(generation);
        let excess: Vec<u64> = {
            let n = inner.reputation_gens.len().saturating_sub(self.keep);
            inner.reputation_gens.iter().take(n).copied().collect()
        };
        for old in excess {
            let old_path = Store::frame_path(&dir, old);
            self.vfs
                .remove_file(&old_path)
                .map_err(io_err(format!("pruning {}", old_path.display())))?;
            inner.reputation_gens.remove(&old);
        }
        Ok(generation)
    }

    /// The persisted federation reputation book (restored by the
    /// [`Store::open`] recovery scan; empty when never written).
    pub fn reputations(&self) -> BTreeMap<u64, ReputationEntry> {
        self.lock().reputations.clone()
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let payload = encode_manifest(&inner.ledger);
        let generation = inner.manifest_gens.iter().next_back().copied().unwrap_or(0) + 1;
        let dir = self.root.join(MANIFEST_DIR);
        self.vfs
            .create_dir_all(&dir)
            .map_err(io_err(format!("creating manifest dir {}", dir.display())))?;
        let path = Store::frame_path(&dir, generation);
        atomic_write_with(&*self.vfs, &path, &frame::encode(generation, &payload))
            .map_err(io_err(format!("writing manifest {}", path.display())))?;
        inner.manifest_gens.insert(generation);
        let excess: Vec<u64> = {
            let n = inner.manifest_gens.len().saturating_sub(self.keep);
            inner.manifest_gens.iter().take(n).copied().collect()
        };
        for old in excess {
            let old_path = Store::frame_path(&dir, old);
            self.vfs
                .remove_file(&old_path)
                .map_err(io_err(format!("pruning {}", old_path.display())))?;
            inner.manifest_gens.remove(&old);
        }
        Ok(())
    }
}

fn encode_manifest(ledger: &BTreeMap<u64, LedgerEntry>) -> Vec<u8> {
    let mut w = Writer::new(KIND_MANIFEST);
    w.u64(ledger.len() as u64);
    for (&session, entry) in ledger {
        w.u64(session);
        w.u8(entry.reason_code);
        w.u64(entry.restarts_spent);
    }
    w.into_bytes()
}

fn decode_manifest(payload: &[u8]) -> Option<BTreeMap<u64, LedgerEntry>> {
    let mut r = Reader::new(payload, KIND_MANIFEST).ok()?;
    let count = r.u64().ok()?;
    // Each entry is 17 bytes; reject length lies before looping.
    if count > (payload.len() as u64) / 17 + 1 {
        return None;
    }
    let mut ledger = BTreeMap::new();
    for _ in 0..count {
        let session = r.u64().ok()?;
        let reason_code = r.u8().ok()?;
        let restarts_spent = r.u64().ok()?;
        ledger.insert(
            session,
            LedgerEntry {
                reason_code,
                restarts_spent,
            },
        );
    }
    r.finish().ok()?;
    Some(ledger)
}

fn encode_reputations(book: &BTreeMap<u64, ReputationEntry>) -> Vec<u8> {
    let mut w = Writer::new(KIND_REPUTATION);
    w.u64(book.len() as u64);
    for (&session, entry) in book {
        w.u64(session);
        w.real(entry.trust);
        w.u64(entry.outlier_rounds);
        w.u64(entry.clean_rounds);
    }
    w.into_bytes()
}

fn decode_reputations(payload: &[u8]) -> Option<BTreeMap<u64, ReputationEntry>> {
    let mut r = Reader::new(payload, KIND_REPUTATION).ok()?;
    let count = r.u64().ok()?;
    // Each entry is at least 28 bytes (8 + 4 + 8 + 8 with f32 Real);
    // reject length lies before looping.
    if count > (payload.len() as u64) / 28 + 1 {
        return None;
    }
    let mut book = BTreeMap::new();
    for _ in 0..count {
        let session = r.u64().ok()?;
        let trust = r.real().ok()?;
        let outlier_rounds = r.u64().ok()?;
        let clean_rounds = r.u64().ok()?;
        if !(0.0..=1.0).contains(&trust) {
            return None;
        }
        book.insert(
            session,
            ReputationEntry {
                trust,
                outlier_rounds,
                clean_rounds,
            },
        );
    }
    r.finish().ok()?;
    Some(book)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("seqdrift-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_load_roundtrip_and_generations() {
        let root = tmp_root("roundtrip");
        let store = Store::open(&root).unwrap();
        assert_eq!(store.put(5, b"alpha").unwrap(), 1);
        assert_eq!(store.put(5, b"beta").unwrap(), 2);
        let (generation, payload) = store.load(5).unwrap().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(payload, b"beta");
        assert_eq!(store.sessions(), vec![5]);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pruning_keeps_configured_generations() {
        let root = tmp_root("prune");
        let store =
            Store::open_with(&root, StoreConfig::default().with_keep_generations(3)).unwrap();
        for i in 0..10u8 {
            store.put(1, &[i]).unwrap();
        }
        let files: Vec<String> = fs::read_dir(root.join("1"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files.len(), 3, "{files:?}");
        // Reopen: the newest payload survives.
        drop(store);
        let store = Store::open(&root).unwrap();
        let (generation, payload) = store.load(1).unwrap().unwrap();
        assert_eq!(generation, 10);
        assert_eq!(payload, vec![9]);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn keep_count_below_two_is_rejected() {
        let root = tmp_root("badkeep");
        assert!(matches!(
            Store::open_with(&root, StoreConfig::default().with_keep_generations(1)),
            Err(StoreError::InvalidConfig(_))
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn manifest_roundtrips_across_reopen() {
        let root = tmp_root("manifest");
        let store = Store::open(&root).unwrap();
        store
            .set_quarantined(
                9,
                LedgerEntry {
                    reason_code: 1,
                    restarts_spent: 3,
                },
            )
            .unwrap();
        store
            .set_quarantined(
                4,
                LedgerEntry {
                    reason_code: 2,
                    restarts_spent: 0,
                },
            )
            .unwrap();
        drop(store);
        let store = Store::open(&root).unwrap();
        let ledger = store.ledger();
        assert_eq!(ledger.len(), 2);
        assert_eq!(
            ledger[&9],
            LedgerEntry {
                reason_code: 1,
                restarts_spent: 3
            }
        );
        store.clear_quarantined(9).unwrap();
        drop(store);
        let store = Store::open(&root).unwrap();
        assert_eq!(store.ledger().len(), 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reputation_book_roundtrips_across_reopen() {
        let root = tmp_root("reputation");
        let store = Store::open(&root).unwrap();
        assert!(store.reputations().is_empty());
        let mut book = BTreeMap::new();
        book.insert(
            3,
            ReputationEntry {
                trust: 0.25,
                outlier_rounds: 4,
                clean_rounds: 1,
            },
        );
        book.insert(7, ReputationEntry::default());
        assert_eq!(store.put_reputations(&book).unwrap(), 1);
        // Overwrite with an updated book: new generation, same contract.
        book.get_mut(&3).unwrap().clean_rounds = 2;
        assert_eq!(store.put_reputations(&book).unwrap(), 2);
        drop(store);
        let store = Store::open(&root).unwrap();
        let restored = store.reputations();
        assert_eq!(restored, book);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_reputation_generation_falls_back_to_older() {
        let root = tmp_root("reputation-corrupt");
        let store = Store::open(&root).unwrap();
        let mut book = BTreeMap::new();
        book.insert(1, ReputationEntry::default());
        store.put_reputations(&book).unwrap();
        book.insert(
            2,
            ReputationEntry {
                trust: 0.5,
                outlier_rounds: 1,
                clean_rounds: 0,
            },
        );
        store.put_reputations(&book).unwrap();
        drop(store);
        // Tear the newest generation; recovery must fall back to gen 1.
        let newest = root.join(REPUTATION_DIR).join("2.ckpt");
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let store = Store::open(&root).unwrap();
        let restored = store.reputations();
        assert_eq!(restored.len(), 1);
        assert!(restored.contains_key(&1));
        assert!(store.recovery_report().corrupt_frames_dropped >= 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn atomic_write_replaces_existing_content() {
        let root = tmp_root("atomic");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("model.sqdm");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp residue.
        let leftovers: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn recovery_deletes_stale_temps_everywhere() {
        let root = tmp_root("temps");
        let store = Store::open(&root).unwrap();
        store.put(3, b"good").unwrap();
        drop(store);
        fs::write(root.join("orphan.tmp"), b"garbage").unwrap();
        fs::write(root.join("3").join("9.ckpt.tmp"), b"garbage").unwrap();
        let store = Store::open(&root).unwrap();
        assert!(!root.join("orphan.tmp").exists());
        assert!(!root.join("3").join("9.ckpt.tmp").exists());
        assert_eq!(store.load(3).unwrap().unwrap().1, b"good");
        // The scan tallied what it swept.
        let report = store.recovery_report();
        assert_eq!(report.stale_temps_deleted, 2);
        assert!(report.repaired_anything());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn mislabelled_frame_is_dropped() {
        let root = tmp_root("mislabel");
        let store = Store::open(&root).unwrap();
        store.put(2, b"one").unwrap();
        store.put(2, b"two").unwrap();
        drop(store);
        // An attacker (or a confused backup tool) renames generation 1
        // over a higher number; the frame header wins.
        fs::copy(root.join("2").join("1.ckpt"), root.join("2").join("7.ckpt")).unwrap();
        let store = Store::open(&root).unwrap();
        let (generation, payload) = store.load(2).unwrap().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(payload, b"two");
        assert!(!root.join("2").join("7.ckpt").exists());
        assert_eq!(store.recovery_report().corrupt_frames_dropped, 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn clean_open_reports_nothing_repaired() {
        let root = tmp_root("cleanreport");
        let store = Store::open(&root).unwrap();
        store.put(1, b"x").unwrap();
        drop(store);
        let store = Store::open(&root).unwrap();
        let report = store.recovery_report();
        assert!(!report.repaired_anything(), "{report:?}");
        assert_eq!(report.generations_kept, 1);
        fs::remove_dir_all(&root).ok();
    }
}
