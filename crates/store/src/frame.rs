//! The on-disk checkpoint frame: a self-validating envelope around one
//! checkpoint payload.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"SQCK"
//!      4     2  store format version (currently 1)
//!      6     8  generation number
//!     14     8  payload length in bytes
//!     22     n  payload (an opaque checkpoint blob)
//!  22 + n     4  CRC-32 over bytes [0, 22 + n)  — header AND payload
//! ```
//!
//! The CRC covers everything before it, so a torn write (power loss mid
//! `write(2)`), a truncated file, or a bit flip anywhere — header,
//! payload or the checksum itself — fails validation. Decoding never
//! trusts the length field beyond the bytes actually present, so a
//! length-lying frame cannot drive an allocation.

use crate::crc32::crc32;

/// Frame magic: distinguishes checkpoint frames from raw pipeline blobs.
pub const FRAME_MAGIC: &[u8; 4] = b"SQCK";
/// Current store format version.
pub const STORE_VERSION: u16 = 1;
/// Bytes before the payload: magic + version + generation + length.
pub const HEADER_LEN: usize = 4 + 2 + 8 + 8;
/// Trailing checksum bytes.
pub const CRC_LEN: usize = 4;

/// Why a frame failed to validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes do not start with the frame magic.
    BadMagic,
    /// The frame was written by a newer store version; refusing to guess
    /// at its layout. Carries the version found on disk.
    NewerVersion(u16),
    /// The file ended before the declared payload + CRC.
    Truncated,
    /// The declared payload length disagrees with the file size.
    LengthMismatch {
        /// Payload bytes the header claims.
        declared: u64,
        /// Payload bytes actually present.
        present: u64,
    },
    /// The checksum over header + payload did not match: a torn write or
    /// bit rot.
    CrcMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a checkpoint frame"),
            FrameError::NewerVersion(v) => {
                write!(f, "frame written by newer store version {v}")
            }
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::LengthMismatch { declared, present } => {
                write!(
                    f,
                    "frame declares {declared} payload bytes but holds {present}"
                )
            }
            FrameError::CrcMismatch => write!(f, "frame checksum mismatch (torn or corrupt)"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one checkpoint payload into a self-validating frame.
pub fn encode(generation: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
    buf.extend_from_slice(FRAME_MAGIC);
    buf.extend_from_slice(&STORE_VERSION.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Validates a frame and returns `(generation, payload)` borrowed from
/// the input. Every failure mode of a crashed writer — truncation at any
/// byte, bit flips in header, payload or checksum — returns a typed
/// error; nothing panics and nothing allocates proportional to untrusted
/// lengths.
pub fn decode(bytes: &[u8]) -> Result<(u64, &[u8]), FrameError> {
    if bytes.len() < 4 {
        // Too short even for the magic: treat as torn.
        return if bytes.starts_with(&FRAME_MAGIC[..bytes.len()]) {
            Err(FrameError::Truncated)
        } else {
            Err(FrameError::BadMagic)
        };
    }
    if &bytes[0..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    let mut gen_bytes = [0u8; 8];
    gen_bytes.copy_from_slice(&bytes[6..14]);
    let generation = u64::from_le_bytes(gen_bytes);
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[14..22]);
    let declared = u64::from_le_bytes(len_bytes);
    // Compare against the bytes on disk before doing anything else: a
    // frame can never legitimately declare more payload than the file
    // holds, and trailing garbage is as suspect as missing bytes.
    let total_needed = ((HEADER_LEN + CRC_LEN) as u64)
        .checked_add(declared)
        .ok_or(FrameError::Truncated)?;
    if (bytes.len() as u64) < total_needed {
        return Err(FrameError::Truncated);
    }
    if (bytes.len() as u64) > total_needed {
        return Err(FrameError::LengthMismatch {
            declared,
            present: (bytes.len() - HEADER_LEN - CRC_LEN) as u64,
        });
    }
    let body_end = HEADER_LEN + declared as usize;
    let mut crc_bytes = [0u8; CRC_LEN];
    crc_bytes.copy_from_slice(&bytes[body_end..body_end + CRC_LEN]);
    let stored_crc = u32::from_le_bytes(crc_bytes);
    if crc32(&bytes[..body_end]) != stored_crc {
        return Err(FrameError::CrcMismatch);
    }
    // Version skew is checked AFTER the checksum: a bit flip landing in
    // the version field must read as corruption (fall back a generation),
    // not as "data from the future" (which hard-stops recovery). Only a
    // frame that checksums clean and still claims a newer version is
    // genuinely from a newer writer.
    if version > STORE_VERSION {
        return Err(FrameError::NewerVersion(version));
    }
    Ok((generation, &bytes[HEADER_LEN..body_end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let payload = b"checkpoint bytes".to_vec();
        let frame = encode(42, &payload);
        let (generation, got) = decode(&frame).unwrap();
        assert_eq!(generation, 42);
        assert_eq!(got, payload.as_slice());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode(0, &[]);
        let (generation, got) = decode(&frame).unwrap();
        assert_eq!(generation, 0);
        assert!(got.is_empty());
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let frame = encode(7, &[1, 2, 3, 4, 5, 6, 7, 8]);
        for cut in 0..frame.len() {
            assert!(
                decode(&frame[..cut]).is_err(),
                "truncation at byte {cut} went unnoticed"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frame = encode(9, b"payload under test");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut frame = encode(3, b"abc");
        frame.push(0);
        assert!(matches!(
            decode(&frame),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn newer_version_is_a_typed_error() {
        let mut frame = encode(1, b"future");
        let future = (STORE_VERSION + 1).to_le_bytes();
        frame[4..6].copy_from_slice(&future);
        // Re-seal the CRC so version skew is the ONLY defect: the check
        // must trip on the version field, not ride on a checksum failure.
        let body_end = frame.len() - CRC_LEN;
        let crc = crate::crc32::crc32(&frame[..body_end]).to_le_bytes();
        frame[body_end..].copy_from_slice(&crc);
        assert_eq!(
            decode(&frame),
            Err(FrameError::NewerVersion(STORE_VERSION + 1))
        );
    }

    #[test]
    fn length_lie_cannot_oversize() {
        let mut frame = encode(1, b"tiny");
        frame[14..22].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(decode(&frame), Err(FrameError::Truncated));
    }
}
