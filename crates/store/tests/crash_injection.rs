//! Deterministic crash-injection matrix for the durable store.
//!
//! Simulates every failure a power loss (or bit rot) can leave on disk —
//! truncation at every byte of the newest frame, single-bit flips in
//! header, payload and checksum, orphaned temp files, a deleted newest
//! generation, and a frame-valid-but-undecodable payload — and proves
//! that `Store::open` recovers the newest generation that both frames
//! and decodes, without panicking, in every case.

use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use seqdrift_store::{frame, Store, StoreError, STORE_VERSION};
use std::fs;
use std::path::{Path, PathBuf};

const DIM: usize = 4;

fn calibrated_pipeline(seed: u64) -> DriftPipeline {
    let mut rng = Rng::seed_from(seed);
    let class0: Vec<Vec<Real>> = (0..80)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.2, 0.05);
            x
        })
        .collect();
    let class1: Vec<Vec<Real>> = (0..80)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.8, 0.05);
            x
        })
        .collect();
    let mut model = MultiInstanceModel::new(2, OsElmConfig::new(DIM, 3).with_seed(seed)).unwrap();
    model.init_train_class(0, &class0).unwrap();
    model.init_train_class(1, &class1).unwrap();
    let train: Vec<(usize, &[Real])> = class0
        .iter()
        .map(|x| (0usize, x.as_slice()))
        .chain(class1.iter().map(|x| (1usize, x.as_slice())))
        .collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(2, DIM).with_window(16), &train).unwrap()
}

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqdrift-crash-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Seeds a store with two checkpoint generations of a real pipeline for
/// session 1 and returns (root, gen1 blob, gen2 blob, path of gen2).
fn seeded_store(name: &str) -> (PathBuf, Vec<u8>, Vec<u8>, PathBuf) {
    let root = tmp_root(name);
    let store = Store::open(&root).unwrap();
    let mut pipe = calibrated_pipeline(7);
    let blob1 = pipe.to_bytes().unwrap();
    store.put(1, &blob1).unwrap();
    let mut rng = Rng::seed_from(99);
    for _ in 0..16 {
        let mut x = vec![0.0; DIM];
        rng.fill_normal(&mut x, 0.2, 0.05);
        pipe.process(&x).unwrap();
    }
    let blob2 = pipe.to_bytes().unwrap();
    store.put(1, &blob2).unwrap();
    let newest = root.join("1").join("2.ckpt");
    assert!(newest.exists());
    (root, blob1, blob2, newest)
}

/// Reopens the store and asserts that session 1 recovers to `expected`
/// bit-for-bit via the full frame+decode validation path.
fn assert_recovers_to(root: &Path, expected: &[u8], expected_gen: u64, what: &str) {
    let store = Store::open(root).unwrap_or_else(|e| panic!("{what}: open failed: {e}"));
    let (generation, pipe) = store
        .load_pipeline(1)
        .unwrap_or_else(|e| panic!("{what}: load failed: {e}"))
        .unwrap_or_else(|| panic!("{what}: session lost entirely"));
    assert_eq!(generation, expected_gen, "{what}: wrong generation chosen");
    assert_eq!(
        pipe.to_bytes().unwrap(),
        expected,
        "{what}: recovered pipeline is not bit-identical"
    );
}

#[test]
fn truncation_at_every_byte_of_newest_frame_falls_back() {
    let (root, blob1, _, newest) = seeded_store("truncate");
    let full = fs::read(&newest).unwrap();
    // Cut at a spread of points covering every structural boundary plus
    // every byte of header and trailer (the payload interior points are
    // equivalent wrt the CRC; a stride keeps the matrix fast).
    let mut cuts: Vec<usize> = (0..=frame::HEADER_LEN + 8).collect();
    cuts.extend((frame::HEADER_LEN + 8..full.len()).step_by(97));
    cuts.extend(full.len().saturating_sub(frame::CRC_LEN + 2)..full.len());
    for cut in cuts {
        fs::write(&newest, &full[..cut]).unwrap();
        assert_recovers_to(&root, &blob1, 1, &format!("truncated at byte {cut}"));
        // Recovery deleted the torn frame; restore it for the next cut.
        fs::write(&newest, &full).unwrap();
    }
    fs::remove_dir_all(&root).ok();
}

#[test]
fn bit_flips_in_header_payload_and_crc_fall_back() {
    let (root, blob1, _, newest) = seeded_store("bitflip");
    let full = fs::read(&newest).unwrap();
    // Every header byte, a stride through the payload, every CRC byte.
    let mut targets: Vec<usize> = (0..frame::HEADER_LEN).collect();
    targets.extend((frame::HEADER_LEN..full.len() - frame::CRC_LEN).step_by(211));
    targets.extend(full.len() - frame::CRC_LEN..full.len());
    for byte in targets {
        for bit in [0u8, 3, 7] {
            let mut bad = full.clone();
            bad[byte] ^= 1 << bit;
            fs::write(&newest, &bad).unwrap();
            assert_recovers_to(&root, &blob1, 1, &format!("bit flip at {byte}:{bit}"));
            fs::write(&newest, &full).unwrap();
        }
    }
    fs::remove_dir_all(&root).ok();
}

#[test]
fn orphan_temps_are_swept_and_ignored() {
    let (root, _, blob2, _) = seeded_store("orphans");
    fs::write(root.join("stale.tmp"), b"writer died here").unwrap();
    fs::write(root.join("1").join("3.ckpt.tmp"), b"torn mid-write").unwrap();
    assert_recovers_to(&root, &blob2, 2, "orphan temps present");
    assert!(!root.join("stale.tmp").exists());
    assert!(!root.join("1").join("3.ckpt.tmp").exists());
    fs::remove_dir_all(&root).ok();
}

#[test]
fn deleted_newest_generation_falls_back() {
    let (root, blob1, _, newest) = seeded_store("delete");
    fs::remove_file(&newest).unwrap();
    assert_recovers_to(&root, &blob1, 1, "newest generation deleted");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn frame_valid_but_undecodable_payload_falls_back() {
    let (root, blob1, _, newest) = seeded_store("undecodable");
    // A perfectly framed checkpoint whose payload is garbage: the CRC
    // passes (the garbage was framed after corruption, e.g. a buggy
    // writer), so only the decode-validation layer can catch it.
    fs::write(&newest, frame::encode(2, b"not a pipeline blob")).unwrap();
    assert_recovers_to(&root, &blob1, 1, "undecodable payload");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn all_generations_torn_loses_session_not_store() {
    let (root, _, _, newest) = seeded_store("total-loss");
    let oldest = root.join("1").join("1.ckpt");
    fs::write(&newest, b"garbage").unwrap();
    fs::write(&oldest, b"also garbage").unwrap();
    let store = Store::open(&root).unwrap();
    assert!(store.load_pipeline(1).unwrap().is_none());
    // The store itself stays usable: a fresh checkpoint re-homes the id.
    let pipe = calibrated_pipeline(3);
    store.put(1, &pipe.to_bytes().unwrap()).unwrap();
    assert!(store.load_pipeline(1).unwrap().is_some());
    fs::remove_dir_all(&root).ok();
}

#[test]
fn newer_store_version_frame_is_a_typed_hard_error() {
    let (root, _, _, newest) = seeded_store("future-store");
    let mut bytes = fs::read(&newest).unwrap();
    bytes[4..6].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
    // Re-seal the CRC so version skew is the only defect.
    let body_end = bytes.len() - frame::CRC_LEN;
    let crc = seqdrift_store::crc32::crc32(&bytes[..body_end]).to_le_bytes();
    bytes[body_end..].copy_from_slice(&crc);
    fs::write(&newest, &bytes).unwrap();
    match Store::open(&root) {
        Err(StoreError::NewerVersion { found, .. }) => {
            assert_eq!(found, STORE_VERSION + 1);
        }
        other => panic!("expected NewerVersion, got {other:?}"),
    }
    // The future frame must survive untouched — old code never deletes
    // data it cannot understand.
    assert_eq!(fs::read(&newest).unwrap(), bytes);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn newer_wire_version_payload_is_a_typed_hard_error() {
    let (root, _, _, newest) = seeded_store("future-wire");
    // A clean frame whose *payload* claims a newer seqdrift wire version:
    // the store must refuse rather than silently fall back past it.
    let mut payload = calibrated_pipeline(5).to_bytes().unwrap();
    payload[4..6].copy_from_slice(&2u16.to_le_bytes());
    fs::write(&newest, frame::encode(2, &payload)).unwrap();
    match Store::open(&root) {
        Err(StoreError::NewerVersion { found, .. }) => assert_eq!(found, 2),
        other => panic!("expected NewerVersion, got {other:?}"),
    }
    fs::remove_dir_all(&root).ok();
}

#[test]
fn crash_during_prune_leaves_recoverable_state() {
    // Pruning deletes oldest-first only after the new generation is
    // durable; simulate a crash "between put and prune" by hand-writing
    // extra generations and verifying recovery keeps the newest valid.
    let root = tmp_root("midprune");
    let store = Store::open(&root).unwrap();
    let pipe = calibrated_pipeline(11);
    let blob = pipe.to_bytes().unwrap();
    for _ in 0..2 {
        store.put(1, &blob).unwrap();
    }
    drop(store);
    // Extra stale generation below the keep window (as if prune died).
    fs::write(root.join("1").join("0.ckpt"), frame::encode(0, &blob)).unwrap();
    let store = Store::open(&root).unwrap();
    let (generation, got) = store.load_pipeline(1).unwrap().unwrap();
    assert_eq!(generation, 2);
    assert_eq!(got.to_bytes().unwrap(), blob);
    fs::remove_dir_all(&root).ok();
}

/// Seeds a store with two manifest generations (one, then two ledger
/// entries) and returns the root plus the two entries.
fn seeded_manifest(
    name: &str,
) -> (
    PathBuf,
    seqdrift_store::LedgerEntry,
    seqdrift_store::LedgerEntry,
) {
    use seqdrift_store::LedgerEntry;
    let root = tmp_root(name);
    let store = Store::open(&root).unwrap();
    let first = LedgerEntry {
        reason_code: 1,
        restarts_spent: 3,
    };
    let second = LedgerEntry {
        reason_code: 2,
        restarts_spent: 0,
    };
    store.set_quarantined(6, first).unwrap();
    store.set_quarantined(8, second).unwrap();
    assert!(root.join("manifest").join("2.ckpt").exists());
    (root, first, second)
}

#[test]
fn torn_manifest_generation_falls_back_to_previous_ledger() {
    let (root, first, _) = seeded_manifest("manifest-torn");
    // Truncate the newest manifest generation mid-frame; recovery must
    // fall back to generation 1 (only the first verdict), not lose the
    // ledger or resurrect garbage.
    let newest = root.join("manifest").join("2.ckpt");
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
    let store = Store::open(&root).unwrap();
    let ledger = store.ledger();
    assert_eq!(ledger.len(), 1);
    assert_eq!(ledger.get(&6), Some(&first));
    assert!(store.recovery_report().corrupt_frames_dropped >= 1);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn bit_flipped_manifest_generation_falls_back() {
    let (root, first, _) = seeded_manifest("manifest-flip");
    let newest = root.join("manifest").join("2.ckpt");
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&newest, &bytes).unwrap();
    let store = Store::open(&root).unwrap();
    assert_eq!(store.ledger().get(&6), Some(&first));
    assert_eq!(store.ledger().len(), 1);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn manifest_orphan_temps_are_swept() {
    let (root, first, second) = seeded_manifest("manifest-orphans");
    fs::write(root.join("manifest").join("3.ckpt.tmp"), b"died mid-write").unwrap();
    let store = Store::open(&root).unwrap();
    assert!(!root.join("manifest").join("3.ckpt.tmp").exists());
    assert!(store.recovery_report().stale_temps_deleted >= 1);
    // The intact ledger is untouched by the sweep.
    let ledger = store.ledger();
    assert_eq!(ledger.get(&6), Some(&first));
    assert_eq!(ledger.get(&8), Some(&second));
    fs::remove_dir_all(&root).ok();
}

#[test]
fn all_manifest_generations_torn_loses_ledger_not_store() {
    let (root, _, second) = seeded_manifest("manifest-total-loss");
    fs::write(root.join("manifest").join("1.ckpt"), b"garbage").unwrap();
    fs::write(root.join("manifest").join("2.ckpt"), b"more garbage").unwrap();
    let store = Store::open(&root).unwrap();
    // Every verdict is gone (empty ledger), but the store is fully
    // usable: new verdicts persist and survive the next reopen.
    assert!(store.ledger().is_empty());
    store.set_quarantined(8, second).unwrap();
    drop(store);
    let store = Store::open(&root).unwrap();
    assert_eq!(store.ledger().get(&8), Some(&second));
    fs::remove_dir_all(&root).ok();
}

#[test]
fn federated_model_roundtrips_and_survives_reopen() {
    let root = tmp_root("federated");
    let store = Store::open(&root).unwrap();
    let blob = calibrated_pipeline(13).to_bytes().unwrap();
    assert!(store.load_federated().unwrap().is_none());
    assert_eq!(store.put_federated(&blob).unwrap(), 1);
    let blob2 = calibrated_pipeline(14).to_bytes().unwrap();
    assert_eq!(store.put_federated(&blob2).unwrap(), 2);
    let (generation, got) = store.load_federated().unwrap().unwrap();
    assert_eq!(generation, 2);
    assert_eq!(got, blob2);
    // The federated directory is not a session: the per-session scan and
    // resume paths must never see it.
    assert!(store.sessions().is_empty());
    drop(store);
    // Power loss + restart: the newest valid generation is restored.
    let store = Store::open(&root).unwrap();
    let (generation, got) = store.load_federated().unwrap().unwrap();
    assert_eq!(generation, 2);
    assert_eq!(got, blob2);
    assert!(store.sessions().is_empty());
    fs::remove_dir_all(&root).ok();
}

#[test]
fn torn_federated_generation_falls_back_to_previous() {
    let root = tmp_root("federated-torn");
    let store = Store::open(&root).unwrap();
    let blob = calibrated_pipeline(15).to_bytes().unwrap();
    store.put_federated(&blob).unwrap();
    let blob2 = calibrated_pipeline(16).to_bytes().unwrap();
    store.put_federated(&blob2).unwrap();
    drop(store);
    // Truncate the newest federated generation mid-frame (torn write).
    let newest = root.join("federated").join("2.ckpt");
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
    let store = Store::open(&root).unwrap();
    let (generation, got) = store.load_federated().unwrap().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(got, blob);
    fs::remove_dir_all(&root).ok();
}
