//! Operation-level storage-fault matrix: the store under a seeded
//! [`FaultVfs`], one fault family at a time.
//!
//! The crash_injection suite proves recovery from what a power loss
//! leaves *on disk*; this suite proves the store's behaviour *at the
//! moment the disk misbehaves* — a failed write surfaces as a typed
//! error without orphaning temps or corrupting older generations, a
//! transient error clears on retry, a lying fsync is caught by the next
//! recovery scan, and the whole schedule replays from a single seed.

use seqdrift_store::{FaultPlan, FaultVfs, LedgerEntry, Store, StoreConfig, StoreError, Vfs};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqdrift-vfsfault-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Opens a store over a `FaultVfs`, returning both handles (the store
/// holds an `Arc` clone, so the test can keep flipping the fault window).
fn faulty_store(root: &PathBuf, plan: FaultPlan) -> (Store, Arc<FaultVfs>) {
    let vfs = Arc::new(FaultVfs::new(plan).with_base(root));
    let store = Store::open_with_vfs(
        root,
        StoreConfig::default(),
        Arc::clone(&vfs) as Arc<dyn Vfs>,
    )
    .unwrap();
    (store, vfs)
}

/// No `*.tmp` residue anywhere under `root`.
fn assert_no_temps(root: &std::path::Path) {
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let name = path.file_name().unwrap_or_default().to_string_lossy();
                assert!(!name.ends_with(".tmp"), "orphan temp left behind: {name}");
            }
        }
    }
}

#[test]
fn enospc_fails_put_cleanly_and_store_survives() {
    let root = tmp_root("enospc");
    let (store, vfs) = faulty_store(&root, FaultPlan::new(21).with_enospc(1024));
    let err = store.put(1, b"payload").unwrap_err();
    assert!(matches!(err, StoreError::Io { .. }), "{err:?}");
    assert!(err.to_string().contains("injected fault"), "{err}");
    assert_no_temps(&root);
    assert!(vfs.fault_count() > 0);
    // The disk "heals": the same store handle writes and reads fine.
    vfs.set_active(false);
    assert_eq!(store.put(1, b"payload").unwrap(), 1);
    assert_eq!(store.load(1).unwrap().unwrap().1, b"payload");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn transient_eio_clears_on_retry() {
    let root = tmp_root("eio-transient");
    // streak_max 1: every injected EIO is purely transient — an index
    // inside a streak never forces the next one to fail (though a fresh
    // draw can still hit, so retries are bounded-loop, not one-shot).
    let (store, vfs) = faulty_store(&root, FaultPlan::new(9).with_eio(400, 1));
    let mut failures = 0;
    let mut last_good: Vec<u8> = Vec::new();
    for i in 0..40u8 {
        let payload = vec![i];
        match store.put(7, &payload) {
            Ok(_) => last_good = payload,
            Err(StoreError::Io { .. }) => {
                failures += 1;
                assert_no_temps(&root);
                let retried = (0..8).any(|_| store.put(7, &payload).is_ok());
                assert!(retried, "8 retries all failed with streak_max 1");
                last_good = payload;
            }
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
    assert!(failures > 0, "seed 9 at 400/1024 never injected an EIO");
    vfs.set_active(false);
    assert_eq!(store.load(7).unwrap().unwrap().1, last_good);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn persistent_eio_streaks_never_corrupt_survivors() {
    let root = tmp_root("eio-streak");
    let (store, vfs) = faulty_store(&root, FaultPlan::new(5).with_eio(300, 4));
    let mut goods: Vec<Vec<u8>> = Vec::new();
    for i in 0..60u8 {
        let payload = vec![i];
        if store.put(3, &payload).is_ok() {
            goods.push(payload);
        }
        // Reads are faulted too: a load may fall back to an older
        // surviving generation (or find none readable), but must never
        // surface bytes that were not durably written.
        if let Some((_, p)) = store.load(3).unwrap() {
            assert!(goods.contains(&p), "load returned non-durable bytes");
        }
    }
    assert!(vfs.fault_count() > 0);
    assert_no_temps(&root);
    // Disk heals: the newest successful write is exactly what loads.
    vfs.set_active(false);
    assert_eq!(
        store.load(3).unwrap().map(|(_, p)| p).as_ref(),
        goods.last()
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn rename_failure_cleans_temp_and_keeps_old_generation() {
    let root = tmp_root("rename");
    let (store, vfs) = faulty_store(&root, FaultPlan::new(13).with_rename_fail(1024));
    vfs.set_active(false);
    store.put(2, b"old").unwrap();
    vfs.set_active(true);
    // The commit step of the atomic write fails: the temp is cleaned up
    // and the previous generation is untouched.
    assert!(matches!(
        store.put(2, b"new").unwrap_err(),
        StoreError::Io { .. }
    ));
    assert_no_temps(&root);
    assert_eq!(store.load(2).unwrap().unwrap(), (1, b"old".to_vec()));
    fs::remove_dir_all(&root).ok();
}

#[test]
fn lying_fsync_torn_write_is_caught_by_next_recovery_scan() {
    let root = tmp_root("lying-fsync");
    let (store, vfs) = faulty_store(&root, FaultPlan::new(17).with_lying_fsync(1024));
    vfs.set_active(false);
    store.put(4, b"durable generation one").unwrap();
    vfs.set_active(true);
    // The lie: put reports success, but the frame never fully reached
    // stable storage. Nothing at write time can detect this.
    assert_eq!(store.put(4, b"generation two, torn").unwrap(), 2);
    drop(store);
    // Power loss + restart: the CRC recovery scan drops the torn frame
    // and falls back to the last honestly-fsynced generation.
    let store = Store::open(&root).unwrap();
    assert_eq!(
        store.load(4).unwrap().unwrap(),
        (1, b"durable generation one".to_vec())
    );
    assert!(store.recovery_report().corrupt_frames_dropped >= 1);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn manifest_write_failure_rolls_back_so_retry_persists() {
    let root = tmp_root("manifest-enospc");
    let (store, vfs) = faulty_store(&root, FaultPlan::new(29).with_enospc(1024));
    let entry = LedgerEntry {
        reason_code: 2,
        restarts_spent: 1,
    };
    assert!(store.set_quarantined(11, entry).is_err());
    assert_no_temps(&root);
    // The failed write must not linger in the in-memory ledger, or the
    // retry below would dedup against it and never reach the disk.
    vfs.set_active(false);
    store.set_quarantined(11, entry).unwrap();
    drop(store);
    let store = Store::open(&root).unwrap();
    assert_eq!(store.ledger().get(&11), Some(&entry));
    fs::remove_dir_all(&root).ok();
}

#[test]
fn same_seed_replays_identical_fault_schedule() {
    let drive = |root: &PathBuf| {
        let (store, vfs) = faulty_store(
            root,
            FaultPlan::new(33)
                .with_enospc(200)
                .with_eio(200, 3)
                .with_rename_fail(100),
        );
        for i in 0..48u8 {
            let _ = store.put(u64::from(i % 4), &[i]);
            let _ = store.load(u64::from(i % 4));
        }
        drop(store);
        vfs.take_events()
    };
    let root_a = tmp_root("replay-a");
    let root_b = tmp_root("replay-b");
    let events_a = drive(&root_a);
    let events_b = drive(&root_b);
    assert!(!events_a.is_empty(), "seed 33 injected nothing");
    // `with_base` keys the schedule on store-relative paths, so two runs
    // in different directories inject byte-for-byte the same faults.
    assert_eq!(events_a, events_b);
    fs::remove_dir_all(&root_a).ok();
    fs::remove_dir_all(&root_b).ok();
}
