//! Machine-readable benchmark results: a tiny hand-rolled JSON emitter
//! and a restricted parser, so `seqdrift load` and the fleet throughput
//! bench can both append to one `BENCH_ingest.json` and CI can track the
//! perf trajectory across PRs without any external crates.
//!
//! The schema is deliberately flat:
//!
//! ```json
//! {
//!   "entries": {
//!     "fleet_ingest_w4": { "samples_per_sec": 1234.5, "p50_us": 11.0,
//!                          "p99_us": 42.0, "samples": 6400 }
//!   }
//! }
//! ```
//!
//! [`merge_into_file`] re-reads an existing file so different producers
//! update their own entries without clobbering each other; a file that
//! fails the restricted parse is replaced rather than trusted.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One ingest measurement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestEntry {
    /// Sustained throughput over the measured run.
    pub samples_per_sec: f64,
    /// Median per-batch round-trip latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-batch round-trip latency, microseconds.
    pub p99_us: f64,
    /// Total sample rows measured.
    pub samples: u64,
    /// What the three value fields measure when they are *not* the
    /// default throughput/latency: e.g. the federation delay entries set
    /// `unit: Some("samples")` because they carry adaptation delays in
    /// samples through the same schema. `None` means the canonical
    /// samples/sec + microsecond semantics. Files written before this
    /// field existed parse as `None`, and entries with `None` render
    /// without the field, so old and new files interoperate.
    pub unit: Option<String>,
    /// Name of the `.sqsc` scenario that produced this entry, when the run
    /// was scenario-driven (`seqdrift load --scenario`). `None` for ad-hoc
    /// runs; absent-field files parse as `None`, same as `unit`.
    pub scenario: Option<String>,
}

/// Serialises entries as the canonical `BENCH_ingest.json` document.
/// Keys are emitted in sorted order so diffs are stable.
pub fn render(entries: &BTreeMap<String, IngestEntry>) -> String {
    let mut out = String::from("{\n  \"entries\": {\n");
    let mut first = true;
    for (name, e) in entries {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let unit = match &e.unit {
            Some(u) => format!(", \"unit\": \"{}\"", escape(u)),
            None => String::new(),
        };
        let scenario = match &e.scenario {
            Some(s) => format!(", \"scenario\": \"{}\"", escape(s)),
            None => String::new(),
        };
        out.push_str(&format!(
            "    \"{}\": {{ \"samples_per_sec\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"samples\": {}{}{} }}",
            escape(name),
            e.samples_per_sec,
            e.p50_us,
            e.p99_us,
            e.samples,
            unit,
            scenario
        ));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Merges `new_entries` into the file at `path` (replacing same-named
/// entries, keeping the rest) and rewrites it. An unreadable or
/// unparseable existing file is discarded and replaced.
pub fn merge_into_file(
    path: &Path,
    new_entries: &[(String, IngestEntry)],
) -> io::Result<BTreeMap<String, IngestEntry>> {
    let mut entries = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| parse(&s))
        .unwrap_or_default();
    for (name, e) in new_entries {
        entries.insert(name.clone(), e.clone());
    }
    std::fs::write(path, render(&entries))?;
    Ok(entries)
}

/// Percentile helpers for latency series (sorts in place). Returns
/// `(p50, p99)` in the same unit as the input; empty input gives zeros.
pub fn latency_percentiles(latencies: &mut [f64]) -> (f64, f64) {
    if latencies.is_empty() {
        return (0.0, 0.0);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // Nearest-rank definition: the smallest value with at least q·N
    // observations at or below it.
    let pick = |q: f64| {
        let rank = ((latencies.len() as f64 * q).ceil() as usize).max(1);
        latencies[rank.min(latencies.len()) - 1]
    };
    (pick(0.50), pick(0.99))
}

fn escape(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '"' => "\\\"".to_string(),
            '\\' => "\\\\".to_string(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32),
            c => c.to_string(),
        })
        .collect()
}

/// Restricted parser for exactly the document shape [`render`] emits
/// (whitespace-insensitive). Anything else returns `None` and the caller
/// starts a fresh file — the parser never needs to be general.
pub fn parse(text: &str) -> Option<BTreeMap<String, IngestEntry>> {
    let mut t = Tokens::new(text);
    t.expect('{')?;
    let key = t.string()?;
    if key != "entries" {
        return None;
    }
    t.expect(':')?;
    t.expect('{')?;
    let mut out = BTreeMap::new();
    if t.peek() == Some('}') {
        t.expect('}')?;
        t.expect('}')?;
        return Some(out);
    }
    loop {
        let name = t.string()?;
        t.expect(':')?;
        t.expect('{')?;
        let mut entry = IngestEntry::default();
        loop {
            let field = t.string()?;
            t.expect(':')?;
            match field.as_str() {
                "samples_per_sec" => entry.samples_per_sec = t.number()?,
                "p50_us" => entry.p50_us = t.number()?,
                "p99_us" => entry.p99_us = t.number()?,
                "samples" => entry.samples = t.number()? as u64,
                "unit" => entry.unit = Some(t.string()?),
                "scenario" => entry.scenario = Some(t.string()?),
                _ => return None,
            }
            match t.next_ch()? {
                ',' => continue,
                '}' => break,
                _ => return None,
            }
        }
        out.insert(name, entry);
        match t.next_ch()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    t.expect('}')?;
    Some(out)
}

struct Tokens<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Tokens<'a> {
    fn new(s: &'a str) -> Self {
        Tokens {
            chars: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.peek().copied()
    }

    fn next_ch(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.next()
    }

    fn expect(&mut self, want: char) -> Option<()> {
        (self.next_ch()? == want).then_some(())
    }

    fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next()? {
                '"' => return Some(out),
                '\\' => match self.chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + self.chars.next()?.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        let mut buf = String::new();
        while matches!(
            self.chars.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')
        ) {
            buf.push(self.chars.next()?);
        }
        buf.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tput: f64) -> IngestEntry {
        IngestEntry {
            samples_per_sec: tput,
            p50_us: 12.34,
            p99_us: 99.9,
            samples: 6400,
            unit: None,
            scenario: None,
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut entries = BTreeMap::new();
        entries.insert("fleet_ingest_w4".to_string(), entry(1234.5));
        entries.insert("load_s8".to_string(), entry(999.0));
        let text = render(&entries);
        assert_eq!(parse(&text).unwrap(), entries);
    }

    #[test]
    fn empty_document_roundtrips() {
        let entries = BTreeMap::new();
        assert_eq!(parse(&render(&entries)).unwrap(), entries);
    }

    #[test]
    fn unit_field_roundtrips_and_old_files_still_parse() {
        let mut entries = BTreeMap::new();
        let mut delay = entry(219.0);
        delay.unit = Some("samples".to_string());
        entries.insert("federate50_delay_merge_off".to_string(), delay);
        entries.insert("load_s8".to_string(), entry(999.0));
        let text = render(&entries);
        assert!(text.contains("\"unit\": \"samples\""), "{text}");
        assert_eq!(parse(&text).unwrap(), entries);

        // A document written before the unit field existed parses with
        // `unit: None` for every entry.
        let legacy = "{ \"entries\": { \"a\": { \"samples_per_sec\": 1.0, \
                      \"p50_us\": 2.00, \"p99_us\": 3.00, \"samples\": 4 } } }";
        let parsed = parse(legacy).unwrap();
        assert_eq!(parsed["a"].unit, None);
        assert_eq!(parsed["a"].samples, 4);
    }

    #[test]
    fn scenario_field_roundtrips_and_old_files_still_parse() {
        let mut entries = BTreeMap::new();
        let mut attributed = entry(512.0);
        attributed.scenario = Some("gradual-wave".to_string());
        entries.insert("scenario_gradual-wave_sessions_4".to_string(), attributed);
        entries.insert("load_s8".to_string(), entry(999.0));
        let text = render(&entries);
        assert!(text.contains("\"scenario\": \"gradual-wave\""), "{text}");
        assert_eq!(parse(&text).unwrap(), entries);

        // Entries can carry both unit and scenario.
        let mut both = entry(7.0);
        both.unit = Some("samples".to_string());
        both.scenario = Some("s1".to_string());
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), both);
        assert_eq!(parse(&render(&m)).unwrap(), m);

        // Pre-scenario documents parse with `scenario: None`.
        let legacy = "{ \"entries\": { \"a\": { \"samples_per_sec\": 1.0, \
                      \"p50_us\": 2.00, \"p99_us\": 3.00, \"samples\": 4 } } }";
        assert_eq!(parse(legacy).unwrap()["a"].scenario, None);
    }

    #[test]
    fn merge_preserves_other_entries_and_replaces_same_named() {
        let dir = std::env::temp_dir().join(format!("seqdrift-benchjson-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_ingest.json");
        let _ = std::fs::remove_file(&path);

        merge_into_file(&path, &[("a".into(), entry(1.0)), ("b".into(), entry(2.0))]).unwrap();
        let merged = merge_into_file(&path, &[("b".into(), entry(3.0))]).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged["a"].samples_per_sec, 1.0);
        assert_eq!(merged["b"].samples_per_sec, 3.0);

        // A corrupt file is replaced, not trusted.
        std::fs::write(&path, "{ not json").unwrap();
        let merged = merge_into_file(&path, &[("c".into(), entry(4.0))]).unwrap();
        assert_eq!(merged.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn percentiles_pick_expected_ranks() {
        let mut lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (p50, p99) = latency_percentiles(&mut lat);
        assert_eq!(p50, 50.0);
        assert_eq!(p99, 99.0);
        let (z50, z99) = latency_percentiles(&mut []);
        assert_eq!((z50, z99), (0.0, 0.0));
    }
}
