//! Dependency-free timing harness.
//!
//! The workspace builds offline with no external crates, so the benches use
//! this minimal harness instead of criterion: warm up, auto-calibrate the
//! iteration count so one sample is long enough for the OS clock, collect a
//! fixed number of samples, and report the median (robust to scheduler
//! noise) with min/max spread. No statistics framework, no output files —
//! numbers print to stdout in a grep-friendly single line per bench.

use std::time::{Duration, Instant};

/// Samples collected per bench.
const SAMPLES: usize = 11;
/// Target wall-clock length of one sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Warm-up budget before calibration.
const WARMUP: Duration = Duration::from_millis(50);

/// Summary of one bench run.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Bench label.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Logical elements processed per iteration (for throughput), if any.
    pub elements: Option<u64>,
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

impl Stats {
    /// Prints the one-line report this harness emits per bench.
    pub fn report(&self) {
        let mut line = format!(
            "{:<50} {:>12}/iter  (min {}, max {}, {} x {} iters)",
            self.name,
            fmt_time(self.median_ns),
            fmt_time(self.min_ns),
            fmt_time(self.max_ns),
            SAMPLES,
            self.iters_per_sample,
        );
        if let Some(elements) = self.elements {
            let per_sec = elements as f64 / (self.median_ns * 1e-9);
            line.push_str(&format!("  [{:.3} Melem/s]", per_sec / 1e6));
        }
        println!("{line}");
    }
}

/// Times `f`, auto-calibrating how many calls make up one sample, and
/// reports the median over [`SAMPLES`] samples. `elements` is the number of
/// logical items one `f()` call processes (enables the throughput column).
pub fn bench(name: &str, elements: Option<u64>, mut f: impl FnMut()) -> Stats {
    // Warm up (fills caches, triggers lazy init) and estimate the per-call
    // cost at the same time.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < WARMUP || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let per_call = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
    let iters_per_sample = ((SAMPLE_TARGET.as_nanos() as f64 / per_call).ceil() as u64).max(1);

    let mut samples_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            f();
        }
        samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = Stats {
        name: name.to_string(),
        median_ns: samples_ns[SAMPLES / 2],
        min_ns: samples_ns[0],
        max_ns: samples_ns[SAMPLES - 1],
        iters_per_sample,
        elements,
    };
    stats.report();
    stats
}

/// Like [`bench`] for routines that consume fresh state per call (streaming
/// a whole dataset through a detector, say): `setup` runs untimed before
/// every timed `routine` call, and each call is one sample — no inner loop,
/// so keep routines in the multi-millisecond range.
pub fn bench_batched<S>(
    name: &str,
    elements: Option<u64>,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S),
) -> Stats {
    // One warm-up run.
    routine(setup());
    let mut samples_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let state = setup();
        let start = Instant::now();
        routine(state);
        samples_ns.push(start.elapsed().as_nanos() as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = Stats {
        name: name.to_string(),
        median_ns: samples_ns[SAMPLES / 2],
        min_ns: samples_ns[0],
        max_ns: samples_ns[SAMPLES - 1],
        iters_per_sample: 1,
        elements,
    };
    stats.report();
    stats
}

/// Prints a section header so multi-group benches stay readable.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_positive_medians() {
        let mut acc = 0u64;
        let s = bench("noop-ish", Some(4), || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert_eq!(s.elements, Some(4));
    }

    #[test]
    fn bench_batched_runs_setup_per_sample() {
        let mut setups = 0u32;
        bench_batched(
            "batched",
            None,
            || {
                setups += 1;
                vec![1u8; 64]
            },
            |v| {
                std::hint::black_box(v.len());
            },
        );
        assert_eq!(setups as usize, SAMPLES + 1);
    }
}
