//! # seqdrift-bench
//!
//! Benchmarks regenerating the paper's execution-time artefacts and
//! profiling the hot kernels, built on the in-repo [`harness`] (the
//! workspace builds offline, so there is no criterion):
//!
//! * `table5_pipeline` — end-to-end per-method streaming cost on the
//!   700-sample fan dataset (Table 5);
//! * `table6_breakdown` — the six per-sample operations of Algorithms 1–4
//!   (Table 6);
//! * `detectors` — per-sample `push` cost of the proposed detector vs
//!   Quant Tree vs SPLL vs DDM/ADWIN;
//! * `kernels` — linalg primitives (matvec, Sherman–Morrison update,
//!   centroid update, Quant Tree binning);
//! * `fleet` — multi-session throughput of `seqdrift-fleet` (sessions ×
//!   samples/sec vs worker count).
//!
//! Run with `cargo bench -p seqdrift-bench`; each bench prints one line per
//! measurement to stdout. Shared fixtures live here in the library so every
//! bench constructs identical workloads.

pub mod harness;
pub mod json;

use seqdrift_datasets::fan::{self, Environment, FanConfig, FanScenario};
use seqdrift_datasets::DriftDataset;
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

/// The fan dataset used by the timing benches (Table 5/6 configuration).
pub fn fan_fixture() -> DriftDataset {
    fan::generate(
        &FanConfig::default(),
        FanScenario::Sudden,
        Environment::Silent,
    )
}

/// A trained two-instance model at the given dimensionality.
pub fn trained_model(dim: usize, hidden: usize, seed: u64) -> MultiInstanceModel {
    let mut rng = Rng::seed_from(seed);
    let mut model =
        MultiInstanceModel::new(2, OsElmConfig::new(dim, hidden).with_seed(seed)).unwrap();
    for (label, mean) in [(0usize, 0.3), (1usize, 0.7)] {
        let blob: Vec<Vec<Real>> = (0..60)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_normal(&mut x, mean, 0.05);
                x
            })
            .collect();
        model.init_train_class(label, &blob).unwrap();
    }
    model
}

/// A reproducible probe sample.
pub fn probe(dim: usize, seed: u64) -> Vec<Real> {
    let mut rng = Rng::seed_from(seed);
    let mut x = vec![0.0; dim];
    rng.fill_normal(&mut x, 0.5, 0.1);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_consistent() {
        let d = fan_fixture();
        assert_eq!(d.test.len(), 700);
        let m = trained_model(64, 8, 1);
        assert!(m.is_initialized());
        assert_eq!(probe(16, 2).len(), 16);
    }
}
