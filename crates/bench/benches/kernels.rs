//! Microbenchmarks of the hot linear-algebra kernels.
//!
//! These are the primitives whose costs compose every row of Tables 5–6:
//! the matvec behind prediction, the Sherman–Morrison rank-1 update behind
//! sequential training, and the centroid arithmetic behind the detector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqdrift_bench::probe;
use seqdrift_core::centroid::CentroidSet;
use seqdrift_core::DistanceMetric;
use seqdrift_linalg::sherman::{oselm_p_update, Rank1Scratch};
use seqdrift_linalg::{vector, Matrix, Rng};
use std::hint::black_box;

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    for &(rows, cols) in &[(22usize, 38usize), (22, 511)] {
        let mut rng = Rng::seed_from(1);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = rng.uniform_range(-1.0, 1.0);
        }
        let x = probe(cols, 2);
        let mut out = vec![0.0; rows];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    m.matvec_into(black_box(&x), &mut out).unwrap();
                    black_box(out[0])
                })
            },
        );
    }
    group.finish();
}

fn bench_sherman_morrison(c: &mut Criterion) {
    let mut group = c.benchmark_group("oselm_p_update");
    for &dim in &[22usize, 64] {
        let mut p = Matrix::identity(dim);
        let mut scratch = Rank1Scratch::new(dim);
        let h = probe(dim, 3);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &(), |b, ()| {
            b.iter(|| {
                oselm_p_update(black_box(&mut p), black_box(&h), &mut scratch).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_centroid_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("centroid");
    for &dim in &[38usize, 511] {
        let mut set = CentroidSet::zeros(2, dim);
        let trained = CentroidSet::zeros(2, dim);
        let x = probe(dim, 4);
        group.bench_with_input(
            BenchmarkId::new("running_mean_update", dim),
            &(),
            |b, ()| {
                b.iter(|| {
                    set.update(0, black_box(&x)).unwrap();
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("l1_distance_sum", dim), &(), |b, ()| {
            b.iter(|| black_box(set.distance_to(&trained, DistanceMetric::L1)))
        });
        group.bench_with_input(BenchmarkId::new("nearest_label", dim), &(), |b, ()| {
            b.iter(|| black_box(set.nearest_label(black_box(&x))))
        });
    }
    group.finish();
}

fn bench_vector_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector");
    let a = probe(511, 5);
    let b_ = probe(511, 6);
    group.bench_function("dot_511", |b| {
        b.iter(|| black_box(vector::dot(black_box(&a), black_box(&b_))))
    });
    group.bench_function("dist_l1_511", |b| {
        b.iter(|| black_box(vector::dist_l1(black_box(&a), black_box(&b_))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matvec,
    bench_sherman_morrison,
    bench_centroid_ops,
    bench_vector_primitives
);
criterion_main!(benches);
