//! Microbenchmarks of the hot linear-algebra kernels.
//!
//! These are the primitives whose costs compose every row of Tables 5–6:
//! the matvec behind prediction, the Sherman–Morrison rank-1 update behind
//! sequential training, and the centroid arithmetic behind the detector.

use seqdrift_bench::harness::{bench, section};
use seqdrift_bench::probe;
use seqdrift_core::centroid::CentroidSet;
use seqdrift_core::DistanceMetric;
use seqdrift_linalg::sherman::{oselm_p_update, Rank1Scratch};
use seqdrift_linalg::{vector, Matrix, Rng};
use std::hint::black_box;

fn bench_matvec() {
    section("matvec");
    for &(rows, cols) in &[(22usize, 38usize), (22, 511)] {
        let mut rng = Rng::seed_from(1);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = rng.uniform_range(-1.0, 1.0);
        }
        let x = probe(cols, 2);
        let mut out = vec![0.0; rows];
        bench(&format!("matvec/{rows}x{cols}"), None, || {
            m.matvec_into(black_box(&x), &mut out).unwrap();
            black_box(out[0]);
        });
    }
}

fn bench_sherman_morrison() {
    section("oselm_p_update");
    for &dim in &[22usize, 64] {
        let mut p = Matrix::identity(dim);
        let mut scratch = Rank1Scratch::new(dim);
        let h = probe(dim, 3);
        bench(&format!("oselm_p_update/{dim}"), None, || {
            oselm_p_update(black_box(&mut p), black_box(&h), &mut scratch).unwrap();
        });
    }
}

fn bench_centroid_ops() {
    section("centroid");
    for &dim in &[38usize, 511] {
        let mut set = CentroidSet::zeros(2, dim);
        let trained = CentroidSet::zeros(2, dim);
        let x = probe(dim, 4);
        bench(&format!("centroid/running_mean_update/{dim}"), None, || {
            set.update(0, black_box(&x)).unwrap();
        });
        bench(&format!("centroid/l1_distance_sum/{dim}"), None, || {
            black_box(set.distance_to(&trained, DistanceMetric::L1));
        });
        bench(&format!("centroid/nearest_label/{dim}"), None, || {
            black_box(set.nearest_label(black_box(&x)));
        });
    }
}

fn bench_vector_primitives() {
    section("vector");
    let a = probe(511, 5);
    let b = probe(511, 6);
    bench("vector/dot_511", None, || {
        black_box(vector::dot(black_box(&a), black_box(&b)));
    });
    bench("vector/dist_l1_511", None, || {
        black_box(vector::dist_l1(black_box(&a), black_box(&b)));
    });
}

fn main() {
    bench_matvec();
    bench_sherman_morrison();
    bench_centroid_ops();
    bench_vector_primitives();
}
