//! Table 5 — execution time for 700 fan samples, per method.
//!
//! Each bench iteration streams the full 700-sample fan test split through
//! a pre-built method, mirroring the paper's measurement (the paper also
//! excludes initial training from its Table 5 numbers). Absolute values are
//! host-speed; the paper's claims are the *ratios* between rows, which are
//! hardware-independent (see `seqdrift_edgesim::timing`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use seqdrift_bench::fan_fixture;
use seqdrift_eval::methods::MethodSpec;
use std::hint::black_box;

fn bench_table5(c: &mut Criterion) {
    let dataset = fan_fixture();
    let specs = [
        ("quanttree", MethodSpec::QuantTree { batch: 235, bins: 16 }),
        ("spll", MethodSpec::Spll { batch: 235 }),
        ("baseline", MethodSpec::BaselineNoDetect),
        ("proposed", MethodSpec::Proposed { window: 50 }),
    ];
    let mut group = c.benchmark_group("table5_700_samples");
    group.sample_size(10);
    group.throughput(Throughput::Elements(dataset.test.len() as u64));
    for (name, spec) in specs {
        group.bench_function(name, |b| {
            b.iter_batched(
                || spec.build(&dataset, 22, 42),
                |mut method| {
                    for s in &dataset.test {
                        black_box(method.process(&s.x));
                    }
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
