//! Table 5 — execution time for 700 fan samples, per method.
//!
//! Each sample streams the full 700-sample fan test split through a
//! pre-built method, mirroring the paper's measurement (the paper also
//! excludes initial training from its Table 5 numbers). Absolute values are
//! host-speed; the paper's claims are the *ratios* between rows, which are
//! hardware-independent (see `seqdrift_edgesim::timing`).

use seqdrift_bench::fan_fixture;
use seqdrift_bench::harness::{bench_batched, section};
use seqdrift_eval::methods::MethodSpec;
use std::hint::black_box;

fn main() {
    section("table5_700_samples");
    let dataset = fan_fixture();
    let specs = [
        (
            "quanttree",
            MethodSpec::QuantTree {
                batch: 235,
                bins: 16,
            },
        ),
        ("spll", MethodSpec::Spll { batch: 235 }),
        ("baseline", MethodSpec::BaselineNoDetect),
        ("proposed", MethodSpec::Proposed { window: 50 }),
    ];
    for (name, spec) in specs {
        bench_batched(
            &format!("table5/{name}"),
            Some(dataset.test.len() as u64),
            || spec.build(&dataset, 22, 42),
            |mut method| {
                for s in &dataset.test {
                    black_box(method.process(&s.x));
                }
            },
        );
    }
}
