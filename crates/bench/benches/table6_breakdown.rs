//! Table 6 — per-sample execution-time breakdown of the proposed method
//! (511 features, 22 hidden nodes, 2 instances).
//!
//! One bench line per row of the paper's Table 6. The `repro -- table6`
//! binary prints the same breakdown with Pico projections.

use seqdrift_bench::harness::{bench, section};
use seqdrift_bench::{probe, trained_model};
use seqdrift_core::centroid::CentroidSet;
use seqdrift_core::DistanceMetric;
use seqdrift_linalg::Real;
use std::hint::black_box;

const DIM: usize = 511;
const CLASSES: usize = 2;

fn centroids() -> CentroidSet {
    let mut set = CentroidSet::zeros(CLASSES, DIM);
    set.set_centroid(0, &probe(DIM, 10)).unwrap();
    set.set_centroid(1, &probe(DIM, 11)).unwrap();
    set.set_count(0, 60);
    set.set_count(1, 60);
    set
}

fn main() {
    section("table6");
    let x = probe(DIM, 12);

    // Row 1: label prediction (Algorithm 1 line 6).
    let mut model = trained_model(DIM, 22, 13);
    bench("table6/label_prediction", None, || {
        black_box(model.predict(black_box(&x)).unwrap());
    });

    // Row 2: distance computation (Algorithm 1 lines 12-14).
    let trained = centroids();
    let mut test_set = centroids();
    bench("table6/distance_computation", None, || {
        test_set.update(0, black_box(&x)).unwrap();
        black_box(test_set.distance_to(&trained, DistanceMetric::L1));
    });

    // Row 3: model retraining without label prediction (Algorithm 2, 8-9).
    let mut m3 = trained_model(DIM, 22, 14);
    let cor = centroids();
    bench("table6/retraining_without_label_prediction", None, || {
        let label = cor.nearest_label(black_box(&x));
        m3.seq_train_label(label, &x).unwrap();
    });

    // Row 4: model retraining with label prediction (Algorithm 2, 11-12).
    let mut m4 = trained_model(DIM, 22, 15);
    bench("table6/retraining_with_label_prediction", None, || {
        let label = m4.predict(black_box(&x)).unwrap().label;
        m4.seq_train_label(label, &x).unwrap();
    });

    // Row 5: label coordinates initialisation (Algorithm 3).
    let mut cor5 = centroids();
    let mut tmp = vec![0.0; DIM];
    bench("table6/label_coordinates_initialization", None, || {
        let baseline = cor5.pairwise_distance_sum();
        let mut best: Option<(usize, Real)> = None;
        for cls in 0..CLASSES {
            tmp.copy_from_slice(cor5.centroid(cls).unwrap());
            cor5.set_centroid(cls, &x).unwrap();
            let d = cor5.pairwise_distance_sum();
            cor5.set_centroid(cls, &tmp).unwrap();
            if d > baseline && best.is_none_or(|(_, bd)| d > bd) {
                best = Some((cls, d));
            }
        }
        black_box(best);
    });

    // Row 6: label coordinates update (Algorithm 4).
    let mut cor6 = centroids();
    bench("table6/label_coordinates_update", None, || {
        let label = cor6.nearest_label(black_box(&x));
        cor6.update(label, &x).unwrap();
    });
}
