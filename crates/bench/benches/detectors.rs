//! Per-sample detector costs: the proposed sequential detector against the
//! batch baselines and the error-rate family.
//!
//! The proposed method's argument is that its per-sample work is O(C·D)
//! with no amortised batch spikes; this bench shows both the steady-state
//! per-push cost and (via the batch detectors' throughput entries) the cost
//! including their end-of-batch evaluations.

use seqdrift_baselines::quanttree::{QuantTree, QuantTreeConfig};
use seqdrift_baselines::spll::{Spll, SpllConfig};
use seqdrift_baselines::{Adwin, BatchDriftDetector, Ddm, ErrorRateDetector};
use seqdrift_bench::harness::{bench, section};
use seqdrift_core::centroid::CentroidSet;
use seqdrift_core::{CentroidDetector, DetectorConfig};
use seqdrift_linalg::{Real, Rng};
use std::hint::black_box;

const DIM: usize = 511;
const BATCH: usize = 235;

fn training_rows(n: usize, seed: u64) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_uniform(&mut x, 0.0, 1.0);
            x
        })
        .collect()
}

fn bench_proposed_observe() {
    let train = training_rows(60, 1);
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0usize, x.as_slice())).collect();
    let trained = CentroidSet::from_labeled(1, DIM, &pairs).unwrap();
    let cfg = DetectorConfig::new(1, DIM)
        .with_window(50)
        .with_theta_drift(1e9)
        .with_theta_error(0.0);
    let mut det = CentroidDetector::new(cfg, trained).unwrap();
    let x = train[0].clone();
    bench("proposed_observe_511", None, || {
        black_box(det.observe(0, black_box(&x), 1.0).unwrap());
    });
}

fn bench_batch_push() {
    section("batch_detectors");
    let train = training_rows(300, 2);
    let stream = training_rows(BATCH, 4);

    let qt_cfg = QuantTreeConfig {
        bins: 16,
        batch_size: BATCH,
        alpha: 0.01,
        mc_reps: 100,
        seed: 3,
    };
    let mut qt = QuantTree::fit(&train, &qt_cfg);
    bench(
        &format!("quanttree_batch/{BATCH}"),
        Some(BATCH as u64),
        || {
            for x in &stream {
                black_box(qt.push(black_box(x)));
            }
        },
    );

    let spll_cfg = SpllConfig {
        clusters: 3,
        batch_size: BATCH,
        z: 4.0,
        max_kmeans_iter: 50,
        seed: 5,
    };
    let mut spll = Spll::fit(&train, &spll_cfg);
    bench(&format!("spll_batch/{BATCH}"), Some(BATCH as u64), || {
        for x in &stream {
            black_box(spll.push(black_box(x)));
        }
    });
}

fn bench_error_rate_family() {
    section("error_rate_detectors");
    let mut rng = Rng::seed_from(6);
    let errors: Vec<bool> = (0..1000).map(|_| rng.uniform() < 0.1).collect();
    let n = errors.len() as u64;

    let mut ddm = Ddm::default();
    bench("ddm_1000", Some(n), || {
        for &e in &errors {
            black_box(ddm.push(black_box(e)));
        }
    });

    let mut adwin = Adwin::default();
    bench("adwin_1000", Some(n), || {
        for &e in &errors {
            black_box(adwin.push(black_box(e)));
        }
    });
}

fn main() {
    bench_proposed_observe();
    bench_batch_push();
    bench_error_rate_family();
}
