//! Fleet throughput: aggregate samples/sec for S concurrent sessions as a
//! function of worker-thread count.
//!
//! The claim under test is multiplexing: the per-sample cost of the paper's
//! detector is small enough that one worker thread serves *many* device
//! sessions (>1 session/thread), and adding workers scales aggregate
//! throughput until the host runs out of cores. Each measurement replays
//! `SAMPLES_PER_SESSION` probe samples into each of `SESSIONS` sessions
//! restored from one calibrated snapshot, then drains via `shutdown()`.

use seqdrift_bench::harness::{bench_batched, section};
use seqdrift_bench::json::{merge_into_file, IngestEntry};
use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_fleet::{FleetConfig, FleetEngine, SessionId};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use std::hint::black_box;

const DIM: usize = 38;
const SESSIONS: u64 = 64;
const SAMPLES_PER_SESSION: usize = 100;

fn calibrated_blob() -> Vec<u8> {
    let mut rng = Rng::seed_from(11);
    let train: Vec<Vec<Real>> = (0..80)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.3, 0.05);
            x
        })
        .collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 16).with_seed(1)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    let pipeline =
        DriftPipeline::calibrate(model, DetectorConfig::new(1, DIM).with_window(32), &pairs)
            .unwrap();
    pipeline.to_bytes().unwrap()
}

fn stream(n: usize) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(13);
    (0..n)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.3, 0.05);
            x
        })
        .collect()
}

fn main() {
    section("fleet_throughput");
    let blob = calibrated_blob();
    let samples = stream(SAMPLES_PER_SESSION);
    let total = SESSIONS * SAMPLES_PER_SESSION as u64;

    let mut json_entries = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let stats = bench_batched(
            &format!("fleet/{SESSIONS}_sessions_x{SAMPLES_PER_SESSION}/workers_{workers}"),
            Some(total),
            || {
                let fleet =
                    FleetEngine::new(FleetConfig::new(workers).with_queue_capacity(1024)).unwrap();
                for dev in 0..SESSIONS {
                    fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
                }
                fleet
            },
            |fleet| {
                // Round-robin across sessions so every shard's queue stays
                // warm; feed_blocking applies backpressure instead of Busy.
                for x in &samples {
                    for dev in 0..SESSIONS {
                        fleet.feed_blocking(SessionId(dev), x).unwrap();
                    }
                }
                let report = fleet.shutdown();
                assert_eq!(report.metrics.samples_processed, total);
                black_box(report.metrics.samples_processed);
            },
        );
        // Machine-readable trajectory entry: throughput from the median
        // run; the latency columns are amortised per-sample figures (the
        // harness times whole replays, not individual round-trips — true
        // round-trip percentiles come from `seqdrift load`).
        json_entries.push((
            format!("fleet_ingest_workers_{workers}"),
            IngestEntry {
                samples_per_sec: total as f64 / (stats.median_ns * 1e-9),
                p50_us: stats.median_ns / total as f64 / 1e3,
                p99_us: stats.max_ns / total as f64 / 1e3,
                samples: total,
                unit: None,
                scenario: None,
            },
        ));
    }
    // Anchor to the workspace root: cargo runs benches with the package
    // directory as CWD, which would otherwise scatter the artefact.
    let json_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_ingest.json");
    match merge_into_file(&json_path, &json_entries) {
        Ok(_) => println!("wrote {}", json_path.display()),
        Err(e) => println!("warning: could not write {}: {e}", json_path.display()),
    }
    println!(
        "fleet: {SESSIONS} sessions multiplexed over 1..8 workers \
         ({} sessions/thread at 8 workers)",
        SESSIONS / 8
    );
}
