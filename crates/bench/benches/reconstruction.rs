//! Cost of a full model reconstruction (Algorithms 2–4): the amortised
//! price of one detected drift, end to end, plus the per-phase step costs.
//!
//! Not a paper table, but the number a deployment engineer asks next after
//! Table 6: how long is the model "offline" (re-learning) after a drift,
//! and what does each reconstruction phase cost per sample?

use seqdrift_bench::harness::bench_batched;
use seqdrift_bench::{probe, trained_model};
use seqdrift_core::centroid::CentroidSet;
use seqdrift_core::reconstruct::{ReconstructConfig, Reconstructor};
use seqdrift_linalg::{Real, Rng};
use std::hint::black_box;

const DIM: usize = 511;
const N_TOTAL: usize = 200;

fn recon_samples() -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(77);
    (0..N_TOTAL)
        .map(|i| {
            let mean = if i % 2 == 0 { 0.45 } else { 0.85 };
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, mean, 0.05);
            x
        })
        .collect()
}

fn previous_centroids() -> CentroidSet {
    let mut set = CentroidSet::zeros(2, DIM);
    set.set_centroid(0, &probe(DIM, 1)).unwrap();
    set.set_centroid(1, &probe(DIM, 2)).unwrap();
    set.set_count(0, 60);
    set.set_count(1, 60);
    set
}

fn main() {
    let samples = recon_samples();
    bench_batched(
        "reconstruction/full_200_samples_511d",
        Some(N_TOTAL as u64),
        || {
            let model = trained_model(DIM, 22, 5);
            let rec = Reconstructor::new(
                ReconstructConfig::new(N_TOTAL)
                    .with_search(20)
                    .with_update(50),
                2,
                DIM,
            )
            .unwrap();
            (model, rec)
        },
        |(mut model, mut rec)| {
            rec.start(&previous_centroids(), &mut model).unwrap();
            for x in &samples {
                black_box(rec.step(&mut model, x).unwrap());
            }
        },
    );
}
