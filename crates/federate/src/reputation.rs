//! Per-session contributor reputation, mirroring the quarantine-ledger
//! pattern at the learning layer.
//!
//! Health gating catches contributors that are *overtly* broken
//! (quarantined, degraded, stale, non-PD). The robust two-pass merge
//! catches statistically plausible but wrong deltas — but a device that
//! poisons every round should not get a fresh hearing every round. The
//! [`ReputationBook`] turns per-round outlier verdicts into persistent
//! trust: exponential decay on outlier rounds, partial recovery on clean
//! rounds, and a trust floor below which a session is excluded from
//! merging entirely. Excluded sessions are still *scored* each round, so
//! a repaired device earns its way back in — exclusion is reversible,
//! unlike quarantine.
//!
//! The book is durable: it persists through the store's reserved
//! `reputation/` manifest (atomic, generational, buffered under
//! `DegradedDurability`) and is restored by `Store::open`'s recovery
//! scan, so an adversarial device cannot launder its history through a
//! process restart.

use seqdrift_fleet::{FederationConfig, ReputationEntry};
use seqdrift_linalg::Real;
use std::collections::BTreeMap;

/// The federation trust ledger: one [`ReputationEntry`] per session that
/// has ever contributed to a merge round. Sessions without an entry are
/// fully trusted (trust 1.0) — reputation is earned downward.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReputationBook {
    entries: BTreeMap<u64, ReputationEntry>,
    /// Whether the book changed since the last persist.
    dirty: bool,
}

impl ReputationBook {
    /// An empty, fully-trusting book.
    pub fn new() -> Self {
        ReputationBook::default()
    }

    /// Restores a book from persisted entries (the durable manifest).
    pub fn from_entries(entries: BTreeMap<u64, ReputationEntry>) -> Self {
        ReputationBook {
            entries,
            dirty: false,
        }
    }

    /// The persistable entries.
    pub fn entries(&self) -> &BTreeMap<u64, ReputationEntry> {
        &self.entries
    }

    /// Current trust of a session (1.0 when never flagged).
    pub fn trust(&self, session: u64) -> Real {
        self.entries.get(&session).map(|e| e.trust).unwrap_or(1.0)
    }

    /// Whether the session's trust clears the configured floor.
    pub fn is_trusted(&self, session: u64, cfg: &FederationConfig) -> bool {
        self.trust(session) >= cfg.trust_floor
    }

    /// Records an outlier round: trust decays multiplicatively.
    pub fn record_outlier(&mut self, session: u64, cfg: &FederationConfig) {
        let entry = self.entries.entry(session).or_default();
        entry.trust = (entry.trust * cfg.trust_decay).clamp(0.0, 1.0);
        entry.outlier_rounds += 1;
        self.dirty = true;
    }

    /// Records a clean round: trust recovers a fraction of the gap to 1.
    /// Sessions already at full trust stay untouched (and the book stays
    /// clean), so an honest fleet never churns the durable manifest.
    pub fn record_clean(&mut self, session: u64, cfg: &FederationConfig) {
        let Some(entry) = self.entries.get_mut(&session) else {
            return;
        };
        if entry.trust >= 1.0 {
            entry.clean_rounds += 1;
            self.dirty = true;
            return;
        }
        entry.trust = (entry.trust + (1.0 - entry.trust) * cfg.trust_recovery).clamp(0.0, 1.0);
        entry.clean_rounds += 1;
        self.dirty = true;
    }

    /// Whether the book changed since the last [`ReputationBook::mark_persisted`].
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Marks the current state as persisted.
    pub fn mark_persisted(&mut self) {
        self.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FederationConfig {
        FederationConfig::default()
            .with_trust_decay(0.5)
            .with_trust_recovery(0.25)
            .with_trust_floor(0.3)
    }

    #[test]
    fn trust_decays_below_floor_and_recovers_above() {
        let cfg = cfg();
        let mut book = ReputationBook::new();
        assert!(book.is_trusted(7, &cfg));
        book.record_outlier(7, &cfg);
        assert_eq!(book.trust(7), 0.5);
        assert!(book.is_trusted(7, &cfg));
        book.record_outlier(7, &cfg);
        assert_eq!(book.trust(7), 0.25);
        assert!(!book.is_trusted(7, &cfg), "below the 0.3 floor");
        // Clean rounds close a quarter of the gap to 1 each time.
        book.record_clean(7, &cfg);
        assert!((book.trust(7) - 0.4375).abs() < 1e-6);
        assert!(book.is_trusted(7, &cfg), "recovered past the floor");
        let entry = book.entries()[&7];
        assert_eq!(entry.outlier_rounds, 2);
        assert_eq!(entry.clean_rounds, 1);
    }

    #[test]
    fn clean_rounds_for_unflagged_sessions_do_not_dirty_the_book() {
        let cfg = cfg();
        let mut book = ReputationBook::new();
        book.record_clean(3, &cfg);
        assert!(!book.is_dirty());
        assert!(book.entries().is_empty());
        book.record_outlier(3, &cfg);
        assert!(book.is_dirty());
        book.mark_persisted();
        assert!(!book.is_dirty());
    }

    #[test]
    fn roundtrips_through_entries() {
        let cfg = cfg();
        let mut book = ReputationBook::new();
        book.record_outlier(1, &cfg);
        book.record_clean(1, &cfg);
        let restored = ReputationBook::from_entries(book.entries().clone());
        assert_eq!(restored.trust(1), book.trust(1));
        assert!(!restored.is_dirty());
    }
}
