//! Seeded deterministic model-poisoning injector — the federation
//! counterpart of the fleet's `FaultInjector`, the server's `ChaosProxy`
//! and the store's `FaultVfs`.
//!
//! Every corruption a [`PoisonInjector`] applies is *statistically
//! plausible*: finite, positive-definite, within the trace bound, fresh
//! — it sails through every overt health gate the federator runs. Only
//! the robust two-pass merge (deviation scoring against the geometric-
//! median centre) can tell it from an honest contribution. That is the
//! point: the injector exists to prove the robust path has teeth, with
//! corruption decisions pure in `(seed, session, round)` so a poisoning
//! scenario replays bit-identically from its seed.
//!
//! Four corruption shapes, mirroring real adversarial / broken devices:
//!
//! * **Scaled β** — the output weights multiplied by a constant factor: a
//!   miscalibrated sensor whose readings are consistently off-scale.
//! * **Rotated Gram** — `P → G P Gᵀ` by Givens rotations (SPD and trace
//!   preserved), with `β` rotated to match: internally consistent
//!   statistics that describe a feature space nobody else lives in.
//! * **Slow bias** — a per-round ramp added to `β`: the stealthy
//!   poisoner that starts under every threshold and grows.
//! * **Colluding** — a β shift derived from the *seed only*, shared by
//!   every colluding victim: coordinated devices that agree with each
//!   other, hoping to out-vote the honest majority.

use seqdrift_linalg::{Matrix, Real, Rng};
use seqdrift_oselm::{Autoencoder, MultiInstanceModel, OsElm};
use std::collections::BTreeMap;

/// How one victim session corrupts its contributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoisonMode {
    /// Multiply `β` by this factor.
    ScaledBeta(Real),
    /// Conjugate `P` (and rotate `β`) by seeded Givens rotations.
    RotatedGram,
    /// Add a seeded unit direction to `β`, scaled up every round.
    SlowBias,
    /// Add the fleet-wide colluder shift (derived from the seed only) to
    /// `β`, so all colluders move together.
    Colluding,
}

impl std::fmt::Display for PoisonMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoisonMode::ScaledBeta(factor) => write!(f, "scaled-beta x{factor:.2}"),
            PoisonMode::RotatedGram => write!(f, "rotated-gram"),
            PoisonMode::SlowBias => write!(f, "slow-bias ramp"),
            PoisonMode::Colluding => write!(f, "colluding shift"),
        }
    }
}

/// Deterministic model-poisoning plan over a set of victim sessions.
#[derive(Debug, Clone)]
pub struct PoisonInjector {
    seed: u64,
    victims: BTreeMap<u64, PoisonMode>,
}

/// Splitmix-style mixer so per-(session, round) randomness is
/// independent of victim iteration order.
fn mix(seed: u64, session: u64, round: u64) -> u64 {
    let mut z = seed
        .wrapping_add(session.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(round.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PoisonInjector {
    /// Builds an injector from an explicit victim plan.
    pub fn new(seed: u64, plan: Vec<(u64, PoisonMode)>) -> Self {
        PoisonInjector {
            seed,
            victims: plan.into_iter().collect(),
        }
    }

    /// Derives a poisoning plan from a seed: 10–20% of `sessions` become
    /// victims (at least one), each with a seeded corruption mode.
    /// Identical `(seed, sessions)` always derive the identical plan.
    pub fn from_seed(seed: u64, sessions: &[u64]) -> Self {
        let mut rng = Rng::seed_from(seed ^ 0x5E0D_F00D);
        let fraction = 0.10 + rng.uniform() * 0.10;
        let count =
            ((sessions.len() as Real * fraction).round() as usize).clamp(1, sessions.len().max(1));
        let mut pool: Vec<u64> = sessions.to_vec();
        let mut victims = BTreeMap::new();
        for _ in 0..count {
            if pool.is_empty() {
                break;
            }
            let idx = rng.below(pool.len() as u64) as usize;
            let session = pool.swap_remove(idx);
            let mode = match rng.below(4) {
                0 => PoisonMode::ScaledBeta(2.0 + rng.uniform() * 4.0),
                1 => PoisonMode::RotatedGram,
                2 => PoisonMode::SlowBias,
                _ => PoisonMode::Colluding,
            };
            victims.insert(session, mode);
        }
        PoisonInjector { seed, victims }
    }

    /// The seed this plan derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Victim sessions, ascending.
    pub fn victims(&self) -> Vec<u64> {
        self.victims.keys().copied().collect()
    }

    /// The full plan.
    pub fn plan(&self) -> &BTreeMap<u64, PoisonMode> {
        &self.victims
    }

    /// One victim per line, for CLI output.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (session, mode) in &self.victims {
            out.push_str(&format!("  session {session}: {mode}\n"));
        }
        out
    }

    /// Corrupts a victim's contribution for `round`. Returns `None` for
    /// non-victims (the model passes through untouched) and for
    /// corruption shapes that degenerate on this model (never expected
    /// for initialised contributors). Pure in `(seed, session, round)`
    /// and the input model.
    pub fn corrupt(
        &self,
        session: u64,
        round: u64,
        model: &MultiInstanceModel,
    ) -> Option<MultiInstanceModel> {
        let mode = *self.victims.get(&session)?;
        let mut rng = Rng::seed_from(mix(self.seed, session, round));
        let mut instances = Vec::with_capacity(model.classes());
        for label in 0..model.classes() {
            let inst = model.instance(label).ok()?;
            let net = inst.network();
            let corrupted = match mode {
                PoisonMode::ScaledBeta(factor) => scale_beta(net, factor),
                PoisonMode::RotatedGram => rotate_gram(net, &mut rng),
                PoisonMode::SlowBias => shift_beta(net, &mut rng, 0.25 * (round + 1) as Real),
                PoisonMode::Colluding => {
                    // The shift direction comes from the seed alone, so
                    // every colluder (and every round) pushes the merge
                    // toward the same wrong model.
                    let mut shared = Rng::seed_from(mix(self.seed, 0, 0) ^ 0xC011_0DE5);
                    shift_beta(net, &mut shared, 1.5)
                }
            }?;
            instances.push(Autoencoder::from_network(corrupted, inst.metric()).ok()?);
        }
        MultiInstanceModel::from_instances(instances).ok()
    }
}

/// Rebuilds a network with new `P`/`β` buffers, preserving the frozen
/// hidden layer and sample count — exactly what a lying device would
/// transmit.
fn rebuild(net: &OsElm, p: Vec<Real>, beta: Vec<Real>) -> Option<OsElm> {
    OsElm::from_parts(
        net.config().clone(),
        net.weights().as_slice().to_vec(),
        net.biases().to_vec(),
        p,
        beta,
        true,
        net.samples_seen(),
    )
    .ok()
}

fn scale_beta(net: &OsElm, factor: Real) -> Option<OsElm> {
    let beta: Vec<Real> = net.beta().as_slice().iter().map(|v| v * factor).collect();
    rebuild(net, net.p().as_slice().to_vec(), beta)
}

/// `β += dir * magnitude * ‖β‖ / ‖dir‖` with `dir` drawn from `rng`.
fn shift_beta(net: &OsElm, rng: &mut Rng, magnitude: Real) -> Option<OsElm> {
    let beta = net.beta().as_slice();
    let beta_norm = beta.iter().map(|v| v * v).sum::<Real>().sqrt().max(1e-3);
    let mut dir: Vec<Real> = vec![0.0; beta.len()];
    rng.fill_normal(&mut dir, 0.0, 1.0);
    let dir_norm = dir.iter().map(|v| v * v).sum::<Real>().sqrt().max(1e-12);
    let scale = magnitude * beta_norm / dir_norm;
    let shifted: Vec<Real> = beta.iter().zip(&dir).map(|(v, d)| v + d * scale).collect();
    rebuild(net, net.p().as_slice().to_vec(), shifted)
}

/// `P → G P Gᵀ`, `β → G β` for a handful of seeded Givens rotations.
/// Symmetry, positive-definiteness and the trace are all preserved — the
/// statistics are internally consistent, just not about the data anyone
/// else saw.
fn rotate_gram(net: &OsElm, rng: &mut Rng) -> Option<OsElm> {
    let mut p = net.p().clone();
    let mut beta = net.beta().clone();
    let n = p.shape().0;
    if n < 2 {
        return None;
    }
    let rotations = 2 + (rng.below(3) as usize);
    for _ in 0..rotations {
        let i = rng.below(n as u64) as usize;
        let mut j = rng.below((n - 1) as u64) as usize;
        if j >= i {
            j += 1;
        }
        let theta = rng.uniform_range(0.6, 2.5);
        givens_conjugate(&mut p, i, j, theta);
        givens_rows(&mut beta, i, j, theta);
    }
    rebuild(net, p.as_slice().to_vec(), beta.as_slice().to_vec())
}

/// Applies the Givens rotation `G(i, j, θ)` to rows `i`,`j` of `m`.
fn givens_rows(m: &mut Matrix, i: usize, j: usize, theta: Real) {
    let (c, s) = (theta.cos(), theta.sin());
    let cols = m.shape().1;
    for col in 0..cols {
        let (a, b) = (m.get(i, col), m.get(j, col));
        m.set(i, col, c * a - s * b);
        m.set(j, col, s * a + c * b);
    }
}

/// `m → G m Gᵀ`: the row rotation followed by the matching column
/// rotation.
fn givens_conjugate(m: &mut Matrix, i: usize, j: usize, theta: Real) {
    givens_rows(m, i, j, theta);
    let (c, s) = (theta.cos(), theta.sin());
    let rows = m.shape().0;
    for row in 0..rows {
        let (a, b) = (m.get(row, i), m.get(row, j));
        m.set(row, i, c * a - s * b);
        m.set(row, j, s * a + c * b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::cholesky::Cholesky;
    use seqdrift_oselm::OsElmConfig;

    fn trained() -> MultiInstanceModel {
        let mut rng = Rng::seed_from(5);
        let rows: Vec<Vec<Real>> = (0..80)
            .map(|_| {
                let mut x = vec![0.0; 4];
                rng.fill_normal(&mut x, 0.3, 0.05);
                x
            })
            .collect();
        let mut m = MultiInstanceModel::new(1, OsElmConfig::new(4, 3).with_seed(1)).unwrap();
        m.init_train_class(0, &rows).unwrap();
        m
    }

    #[test]
    fn plans_are_deterministic_and_bounded() {
        let sessions: Vec<u64> = (0..50).collect();
        let a = PoisonInjector::from_seed(77, &sessions);
        let b = PoisonInjector::from_seed(77, &sessions);
        assert_eq!(a.plan(), b.plan());
        let n = a.victims().len();
        assert!(
            (5..=10).contains(&n),
            "10-20% of 50 sessions, got {n}: {:?}",
            a.victims()
        );
        let c = PoisonInjector::from_seed(78, &sessions);
        assert_ne!(a.plan(), c.plan(), "different seeds, different plans");
        assert!(!a.describe().is_empty());
    }

    #[test]
    fn corruption_is_pure_in_seed_session_round() {
        let model = trained();
        let inj = PoisonInjector::new(9, vec![(3, PoisonMode::RotatedGram)]);
        let x = inj.corrupt(3, 2, &model).unwrap();
        let y = inj.corrupt(3, 2, &model).unwrap();
        let (nx, ny) = (
            x.instance(0).unwrap().network(),
            y.instance(0).unwrap().network(),
        );
        assert_eq!(nx.p().as_slice(), ny.p().as_slice());
        assert_eq!(nx.beta().as_slice(), ny.beta().as_slice());
        // Non-victims pass through.
        assert!(inj.corrupt(4, 2, &model).is_none());
    }

    #[test]
    fn corruptions_pass_overt_gates() {
        let model = trained();
        let net = model.instance(0).unwrap().network();
        let honest_trace: Real = (0..net.p().shape().0).map(|i| net.p().get(i, i)).sum();
        for (idx, mode) in [
            PoisonMode::ScaledBeta(4.0),
            PoisonMode::RotatedGram,
            PoisonMode::SlowBias,
            PoisonMode::Colluding,
        ]
        .into_iter()
        .enumerate()
        {
            let inj = PoisonInjector::new(100 + idx as u64, vec![(1, mode)]);
            let poisoned = inj.corrupt(1, 0, &model).unwrap();
            let pn = poisoned.instance(0).unwrap().network();
            assert!(
                pn.p().as_slice().iter().all(|v| v.is_finite()),
                "{mode}: P must stay finite"
            );
            assert!(
                pn.beta().as_slice().iter().all(|v| v.is_finite()),
                "{mode}: beta must stay finite"
            );
            assert!(
                Cholesky::factor(pn.p()).is_ok(),
                "{mode}: P must stay positive definite"
            );
            let trace: Real = (0..pn.p().shape().0).map(|i| pn.p().get(i, i)).sum();
            assert!(
                trace <= honest_trace * 2.0,
                "{mode}: trace must stay in the honest range"
            );
            assert_eq!(pn.samples_seen(), net.samples_seen(), "{mode}: looks fresh");
            // And the corruption actually changed the statistics.
            let changed = pn.beta().as_slice() != net.beta().as_slice()
                || pn.p().as_slice() != net.p().as_slice();
            assert!(changed, "{mode}: must actually corrupt");
        }
    }

    #[test]
    fn slow_bias_ramps_with_round() {
        let model = trained();
        let inj = PoisonInjector::new(11, vec![(2, PoisonMode::SlowBias)]);
        let honest = model.instance(0).unwrap().network().beta().clone();
        let dist = |m: &MultiInstanceModel| -> Real {
            m.instance(0)
                .unwrap()
                .network()
                .beta()
                .as_slice()
                .iter()
                .zip(honest.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<Real>()
                .sqrt()
        };
        let early = dist(&inj.corrupt(2, 0, &model).unwrap());
        let late = dist(&inj.corrupt(2, 7, &model).unwrap());
        assert!(late > early * 2.0, "ramp: early {early}, late {late}");
    }

    #[test]
    fn colluders_share_their_shift() {
        let model = trained();
        let inj = PoisonInjector::new(
            13,
            vec![(1, PoisonMode::Colluding), (2, PoisonMode::Colluding)],
        );
        let a = inj.corrupt(1, 0, &model).unwrap();
        let b = inj.corrupt(2, 3, &model).unwrap();
        assert_eq!(
            a.instance(0).unwrap().network().beta().as_slice(),
            b.instance(0).unwrap().network().beta().as_slice(),
            "colluders submit the same wrong beta regardless of session/round"
        );
    }
}
