#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # seqdrift-federate
//!
//! Cooperative cross-session model merging for the fleet — the
//! fleet-level extension of the paper's on-device pipeline (ROADMAP open
//! item 4). Because OS-ELM is linear in its sufficient statistics, model
//! replicas that diverged by sequential training can be fused
//! *analytically* (Ito et al., arXiv 2002.12301): no gradients, no
//! retraining, one closed-form solve. A drift learned by one device
//! (detected, reconstructed) is propagated to its peers before their own
//! detectors have to fire, cutting the fleet-wide adaptation delay.
//!
//! A [`Federator`] drives rounds against a running
//! [`seqdrift_fleet::FleetEngine`]:
//!
//! 1. **Collect** — snapshot every registered session through the shard
//!    FIFOs (so each snapshot lands at a well-defined stream point) and
//!    decode its model.
//! 2. **Gate** — quarantined or `Degraded` sessions are rejected
//!    (counted in `contributions_rejected`); mid-reconstruction sessions
//!    are skipped for the round; sessions whose model still equals the
//!    current fleet baseline have nothing to contribute and are skipped;
//!    contributors lagging the freshest contributor by more than the
//!    configured staleness bound are rejected.
//! 3. **Score (Byzantine-robust two-pass)** — with
//!    `FederationConfig::robust` on, each surviving contributor's
//!    stacked (U, c) sufficient statistics are scored against the
//!    iteratively-reweighted geometric-median robust centre
//!    ([`seqdrift_linalg::robust`]); only contributors within the
//!    deviation bound are re-admitted. Outlier verdicts feed a durable
//!    per-session [`ReputationBook`] (exponential trust decay, clean-
//!    round recovery); sessions below the trust floor are excluded from
//!    merging — but still scored, so a repaired device recovers. On
//!    outlier-free rounds every contributor is re-admitted and the merge
//!    below is **bit-identical** to the plain path: robustness costs
//!    nothing when nobody is lying.
//! 4. **Merge** — the admitted models are fused with the baseline by
//!    [`MultiInstanceModel::merge_with`], which validates
//!    positive-definiteness and finiteness exactly like `seq_train`'s
//!    transactional path; a merge that fails validation rejects the
//!    whole round, emits `FleetEvent::MergeRoundRejected`, and leaves
//!    the baseline untouched (blast radius zero).
//! 5. **Redistribute** — the merged model is installed into every
//!    healthy session through the same FIFOs ([`FleetEngine`
//!    `install_model`](seqdrift_fleet::FleetEngine::install_model)), and
//!    becomes the new baseline.
//! 6. **Persist** — the merged generation and the updated reputation
//!    book are flushed to the durable store, so a resume after power
//!    loss restores the fleet-wide model *and* the fleet's memory of who
//!    not to trust.
//!
//! Every step is observable through the fleet metrics (`merge_rounds`,
//! `contributions_accepted`, the per-reason `rejected_*` counters,
//! `redistributions`) and the fleet event log.
//!
//! The [`PoisonInjector`] is the proof harness: seeded, deterministic
//! model corruption that passes every overt gate and is caught only by
//! the robust pass. `seqdrift fleet --poison SEED` wires it in.

mod poison;
mod reputation;

pub use poison::{PoisonInjector, PoisonMode};
pub use reputation::ReputationBook;

use seqdrift_core::{CoreError, DriftPipeline};
use seqdrift_fleet::{
    FederationConfig, FleetEngine, FleetError, MergeRejectReason, RejectReasons, SessionId,
    SessionStatus,
};
use seqdrift_linalg::cholesky::spd_inverse;
use seqdrift_linalg::robust::{deviation_scores, geometric_median};
use seqdrift_linalg::Matrix;
use seqdrift_oselm::{ModelError, MultiInstanceModel};

/// Federation failures.
#[derive(Debug)]
pub enum FederateError {
    /// The engine was built without `FleetConfig::federation`.
    Disabled,
    /// The reference model blob did not decode.
    BadReference(CoreError),
    /// A fleet control operation failed in a way that is not part of the
    /// per-session gating contract (e.g. the engine is shutting down).
    Fleet(FleetError),
    /// Serialising the merged generation failed.
    Persist(CoreError),
}

impl std::fmt::Display for FederateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederateError::Disabled => {
                write!(f, "federation is not enabled on this fleet engine")
            }
            FederateError::BadReference(e) => write!(f, "reference model rejected: {e}"),
            FederateError::Fleet(e) => write!(f, "fleet operation failed: {e}"),
            FederateError::Persist(e) => write!(f, "persisting merged model failed: {e}"),
        }
    }
}

impl std::error::Error for FederateError {}

impl From<FleetError> for FederateError {
    fn from(e: FleetError) -> Self {
        FederateError::Fleet(e)
    }
}

/// What one federation round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundSummary {
    /// A merged model was produced, redistributed and adopted as the new
    /// baseline.
    pub merged: bool,
    /// Contributions accepted into the merge.
    pub accepted: u64,
    /// Contributions rejected by gating (quarantined, degraded, stale,
    /// outlier, distrusted) or discarded because the merge itself failed
    /// validation. Always equals `reject_reasons.total()`.
    pub rejected: u64,
    /// Per-reason breakdown of `rejected`.
    pub reject_reasons: RejectReasons,
    /// Sessions skipped without prejudice: mid-reconstruction, vanished
    /// mid-round, or bit-identical to the baseline (nothing to
    /// contribute).
    pub skipped: u64,
    /// Sessions the merged model was installed into.
    pub redistributed: u64,
    /// Durable federated generation written, when the engine has a state
    /// dir and the write succeeded.
    pub persisted_generation: Option<u64>,
}

/// Drives federation rounds against one [`FleetEngine`].
///
/// The federator owns the fleet-wide *baseline*: the model every healthy
/// session is expected to hold between rounds. Sessions whose snapshot
/// differs from the baseline have learned something (a reconstruction
/// after drift) and become contributors; after a successful merge the
/// merged model is the new baseline, so the next round starts from a
/// clean slate and never double-counts a contribution.
pub struct Federator {
    cfg: FederationConfig,
    /// Decoded reference pipeline, reused as the serialisation vehicle
    /// for durable merged generations (model swapped in, then encoded).
    reference: DriftPipeline,
    /// The current fleet-wide model.
    baseline: MultiInstanceModel,
    /// Fleet-wide `samples_processed` at the last round, for
    /// interval-based polling.
    last_round_at: u64,
    rounds_run: u64,
    /// Rounds attempted (successful or not) — the `round` coordinate the
    /// poison injector's deterministic corruption keys on.
    rounds_attempted: u64,
    /// Durable per-session trust, restored from the store at build.
    reputation: ReputationBook,
    /// Seeded deterministic model poisoning, for chaos testing only.
    poison: Option<PoisonInjector>,
}

impl Federator {
    /// Builds a federator for `engine` from the fleet's reference model
    /// blob (the calibrated pipeline the sessions were created from).
    /// When the engine's durable store holds a persisted federated
    /// generation, its model is restored as the baseline — the
    /// power-loss resume path for the fleet-wide model.
    pub fn new(engine: &FleetEngine, reference_blob: &[u8]) -> Result<Federator, FederateError> {
        let cfg = *engine.federation().ok_or(FederateError::Disabled)?;
        let reference =
            DriftPipeline::from_bytes(reference_blob).map_err(FederateError::BadReference)?;
        let baseline = match engine.load_federated()? {
            Some(blob) => DriftPipeline::from_bytes(&blob)
                .map_err(FederateError::BadReference)?
                .model()
                .clone(),
            None => reference.model().clone(),
        };
        Ok(Federator {
            cfg,
            reference,
            baseline,
            last_round_at: 0,
            rounds_run: 0,
            rounds_attempted: 0,
            reputation: ReputationBook::from_entries(engine.load_reputations()),
            poison: None,
        })
    }

    /// Arms a seeded deterministic [`PoisonInjector`]: victim sessions'
    /// contributions are corrupted before gating each round, exactly as
    /// an adversarial device would submit them. Chaos testing only.
    pub fn with_poison(mut self, injector: PoisonInjector) -> Self {
        self.poison = Some(injector);
        self
    }

    /// The active federation knobs.
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// Rounds that produced a merged model so far.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// The durable per-session trust book.
    pub fn reputation(&self) -> &ReputationBook {
        &self.reputation
    }

    /// The current fleet-wide baseline model.
    pub fn baseline(&self) -> &MultiInstanceModel {
        &self.baseline
    }

    /// Interval-gated round: runs [`Federator::run_round`] when at least
    /// `FederationConfig::interval` fleet-wide samples were processed
    /// since the last round (or since construction). Returns `None` when
    /// the interval has not elapsed. This is what background pollers
    /// call on a timer.
    pub fn maybe_round(
        &mut self,
        engine: &FleetEngine,
    ) -> Result<Option<RoundSummary>, FederateError> {
        let processed = engine.metrics().samples_processed;
        if processed.saturating_sub(self.last_round_at) < self.cfg.interval {
            return Ok(None);
        }
        self.run_round(engine).map(Some)
    }

    /// Runs one federation round now: collect, gate, merge,
    /// redistribute, persist. Infallible per-session outcomes (a session
    /// quarantined mid-round, a reconstruction in progress) are absorbed
    /// into the [`RoundSummary`] counts; only engine-level failures
    /// (shutdown races, store decode of the federator's own state)
    /// surface as errors.
    pub fn run_round(&mut self, engine: &FleetEngine) -> Result<RoundSummary, FederateError> {
        let round_index = self.rounds_attempted;
        self.rounds_attempted += 1;
        let mut summary = RoundSummary::default();
        let mut rejects = RejectReasons::default();
        // Collect + health-gate. Quarantine verdicts come from the
        // registry (pre-seeded from the store ledger at open), degraded
        // health from the snapshot itself.
        let mut candidates: Vec<(SessionId, MultiInstanceModel)> = Vec::new();
        for (id, status) in engine.session_statuses() {
            if matches!(status, SessionStatus::Quarantined(_)) {
                rejects.health += 1;
                continue;
            }
            let blob = match engine.snapshot(id) {
                Ok(blob) => blob,
                // Quarantined between listing and snapshot.
                Err(FleetError::SessionQuarantined(_)) => {
                    rejects.health += 1;
                    continue;
                }
                // Mid-reconstruction sessions refuse to checkpoint; they
                // get another chance next round.
                Err(FleetError::Core(_)) => {
                    summary.skipped += 1;
                    continue;
                }
                // Evicted mid-round.
                Err(FleetError::UnknownSession(_)) => {
                    summary.skipped += 1;
                    continue;
                }
                Err(e) => return Err(FederateError::Fleet(e)),
            };
            let pipeline = match DriftPipeline::from_bytes(&blob) {
                Ok(p) => p,
                // A snapshot that does not decode is a poisoned
                // contribution, not a federator failure.
                Err(_) => {
                    rejects.health += 1;
                    continue;
                }
            };
            if pipeline.health() != seqdrift_core::PipelineHealth::Healthy {
                rejects.health += 1;
                continue;
            }
            let mut model = pipeline.model().clone();
            // Poison injection point: an armed injector replaces a victim
            // session's contribution *after* the health gates — exactly
            // what an adversarial device that keeps its pipeline healthy
            // would submit — and before the baseline-equality check, so a
            // poisoned session always presents as a contributor.
            if let Some(injector) = &self.poison {
                if let Some(poisoned) = injector.corrupt(id.0, round_index, &model) {
                    model = poisoned;
                }
            }
            if models_equal(&model, &self.baseline) {
                // Still on the baseline: nothing learned, nothing to
                // contribute, nothing to install later either (it
                // already holds the model every session will converge
                // to only if a merge happens this round).
                summary.skipped += 1;
                continue;
            }
            candidates.push((id, model));
        }
        // Staleness gate: contributors lagging the freshest candidate by
        // more than the bound carry statistics too old to trust.
        if let Some(freshest) = candidates.iter().map(|(_, m)| model_age(m)).max() {
            candidates.retain(|(_, m)| {
                let keep = freshest - model_age(m) <= self.cfg.staleness_bound;
                if !keep {
                    rejects.staleness += 1;
                }
                keep
            });
        }
        // Contributors that cleared every overt gate — the candidate
        // count reported when the round is rejected wholesale.
        let considered = candidates.len() as u64;
        // Robust two-pass: score against the geometric-median centre,
        // re-admit only contributors within the deviation bound, and
        // settle trust. On outlier-free rounds every candidate survives
        // and the merge below is bit-identical to the plain path.
        if self.cfg.robust && !candidates.is_empty() {
            candidates = self.robust_admit(engine, candidates, &mut rejects);
        }
        if candidates.len() < self.cfg.min_contributors {
            summary.skipped += candidates.len() as u64;
            summary.rejected = rejects.total();
            summary.reject_reasons = rejects;
            engine.record_federation_round(false, 0, rejects);
            if considered > 0 {
                engine
                    .record_merge_round_rejected(considered, MergeRejectReason::TooFewContributors);
            }
            self.persist_reputation(engine);
            self.last_round_at = engine.metrics().samples_processed;
            return Ok(summary);
        }
        // Closed-form merge, transactionally validated. A rejected merge
        // discards the whole round: the baseline and every session stay
        // exactly as they were.
        let models: Vec<&MultiInstanceModel> = candidates.iter().map(|(_, m)| m).collect();
        let merged = match self.baseline.merge_with(&models) {
            Ok(m) => m,
            Err(ModelError::RejectedUpdate(_)) | Err(ModelError::Linalg(_)) => {
                rejects.non_pd += candidates.len() as u64;
                summary.rejected = rejects.total();
                summary.reject_reasons = rejects;
                engine.record_federation_round(false, 0, rejects);
                engine.record_merge_round_rejected(considered, MergeRejectReason::FailedValidation);
                self.persist_reputation(engine);
                self.last_round_at = engine.metrics().samples_processed;
                return Ok(summary);
            }
            // Shape/config mismatches mean the fleet was fed sessions
            // from a different reference — a caller bug worth surfacing.
            Err(e) => {
                return Err(FederateError::Persist(CoreError::Model(e)));
            }
        };
        summary.accepted = candidates.len() as u64;
        summary.merged = true;
        // Redistribute through the shard FIFOs: every healthy session —
        // contributors included — adopts the merged model, so after the
        // round the whole fleet sits on the new baseline. Sessions that
        // refuse (reconstruction started since the snapshot) or vanished
        // are left for the next round.
        for (id, status) in engine.session_statuses() {
            if matches!(status, SessionStatus::Quarantined(_)) {
                continue;
            }
            match engine.install_model(id, merged.clone()) {
                Ok(()) => summary.redistributed += 1,
                Err(FleetError::Core(_))
                | Err(FleetError::UnknownSession(_))
                | Err(FleetError::SessionQuarantined(_)) => {}
                Err(e) => return Err(FederateError::Fleet(e)),
            }
        }
        // Durable merged generation: encode through the reference
        // pipeline so the blob is a full, restorable checkpoint.
        self.reference
            .install_model(merged.clone())
            .map_err(FederateError::Persist)?;
        let blob = self.reference.to_bytes().map_err(FederateError::Persist)?;
        summary.persisted_generation = engine.persist_federated(&blob);
        self.baseline = merged;
        self.rounds_run += 1;
        summary.rejected = rejects.total();
        summary.reject_reasons = rejects;
        engine.record_federation_round(true, summary.accepted, rejects);
        self.persist_reputation(engine);
        self.last_round_at = engine.metrics().samples_processed;
        Ok(summary)
    }

    /// Two-pass Byzantine-robust admission. Pass one computes the robust
    /// centre — the iteratively-reweighted geometric median of every
    /// scoreable contributor's stacked `[U | c]` sufficient statistics,
    /// anchored by the current baseline. Pass two re-admits only the
    /// trusted contributors whose deviation score clears the configured
    /// bound. Verdicts feed the reputation book: outliers decay, clean
    /// contributors recover, and sessions below the trust floor are
    /// excluded from the merge but still scored so they can earn their
    /// way back in.
    ///
    /// The centre is used only for scoring — the merge itself always runs
    /// the unchanged `merge_with` path over the admitted set, so an
    /// outlier-free round is bit-identical to the non-robust path.
    fn robust_admit(
        &mut self,
        engine: &FleetEngine,
        candidates: Vec<(SessionId, MultiInstanceModel)>,
        rejects: &mut RejectReasons,
    ) -> Vec<(SessionId, MultiInstanceModel)> {
        // Trust gate: distrusted sessions never reach the merge, but keep
        // their models around so the round can still score them.
        let mut trusted: Vec<(SessionId, MultiInstanceModel)> = Vec::new();
        let mut excluded: Vec<(SessionId, MultiInstanceModel)> = Vec::new();
        for (id, model) in candidates {
            if self.reputation.is_trusted(id.0, &self.cfg) {
                trusted.push((id, model));
            } else {
                rejects.low_trust += 1;
                engine.record_low_trust_exclusion(id, self.reputation.trust(id.0));
                excluded.push((id, model));
            }
        }
        let Ok(base_stats) = stacked_stats(&self.baseline) else {
            // The baseline's own statistics failing to invert would mean
            // a corrupt fleet model; `merge_with`'s validation is the
            // authority on that — admit everything and let it decide.
            return trusted;
        };
        // Stats matrix per scoreable model: baseline anchor at index 0,
        // then the trusted candidates, then the excluded ones.
        let mut stats: Vec<Matrix> = vec![base_stats];
        let mut keep: Vec<(SessionId, MultiInstanceModel)> = Vec::new();
        for (id, model) in trusted {
            match stacked_stats(&model) {
                Ok(s) => {
                    stats.push(s);
                    keep.push((id, model));
                }
                // Statistics that do not invert are overtly broken, not
                // merely suspicious.
                Err(()) => {
                    rejects.non_pd += 1;
                    self.reputation.record_outlier(id.0, &self.cfg);
                }
            }
        }
        let mut excluded_idx: Vec<(SessionId, Option<usize>)> = Vec::new();
        for (id, model) in &excluded {
            match stacked_stats(model) {
                Ok(s) => {
                    stats.push(s);
                    excluded_idx.push((*id, Some(stats.len() - 1)));
                }
                Err(()) => excluded_idx.push((*id, None)),
            }
        }
        let refs: Vec<&Matrix> = stats.iter().collect();
        let scores = match geometric_median(&refs, 128)
            .and_then(|centre| deviation_scores(&refs, &centre))
        {
            Ok(scores) => scores,
            // Robustness is best-effort: every input here is finite, so a
            // kernel failure is effectively unreachable — fall back to
            // the plain admission set rather than stalling the fleet.
            Err(_) => return keep,
        };
        let mut admitted = Vec::with_capacity(keep.len());
        for (i, (id, model)) in keep.into_iter().enumerate() {
            // Index 0 is the baseline anchor; candidate i sits at i + 1.
            if scores[i + 1] <= self.cfg.deviation_bound {
                self.reputation.record_clean(id.0, &self.cfg);
                admitted.push((id, model));
            } else {
                rejects.deviation += 1;
                self.reputation.record_outlier(id.0, &self.cfg);
            }
        }
        // Excluded sessions are scored for trust recovery only.
        for (id, idx) in excluded_idx {
            match idx {
                Some(i) if scores[i] <= self.cfg.deviation_bound => {
                    self.reputation.record_clean(id.0, &self.cfg);
                }
                _ => self.reputation.record_outlier(id.0, &self.cfg),
            }
        }
        admitted
    }

    /// Flushes the reputation book when it changed. A write that was
    /// buffered (degraded durability) or failed leaves the book dirty, so
    /// the next round retries; an engine without a durable store keeps
    /// the book in memory only.
    fn persist_reputation(&mut self, engine: &FleetEngine) {
        if !self.reputation.is_dirty() {
            return;
        }
        if engine
            .persist_reputations(self.reputation.entries())
            .is_some()
        {
            self.reputation.mark_persisted();
        }
    }
}

/// Stacked sufficient statistics `[U | c]` of a model: per label,
/// `U = P⁻¹` (the regularised Gram matrix) and `c = U·β` (the
/// normal-equation right-hand side), stacked vertically across labels
/// into one `(classes·hidden) × (hidden + output)` matrix. One matrix
/// per contributor lets the robust kernels score a contribution
/// atomically across all of its class instances — and because
/// `merge_with` averages exactly these statistics, distance in this
/// space is distance in what the merge actually consumes.
fn stacked_stats(model: &MultiInstanceModel) -> Result<Matrix, ()> {
    let classes = model.classes();
    if classes == 0 {
        return Err(());
    }
    let (hd, od) = {
        let net_ref = model.instance(0).map_err(|_| ())?.network();
        (net_ref.p().shape().0, net_ref.beta().shape().1)
    };
    let mut out = Matrix::zeros(classes * hd, hd + od);
    for label in 0..classes {
        let instance = model.instance(label).map_err(|_| ())?;
        let net = instance.network();
        let u = spd_inverse(net.p()).map_err(|_| ())?;
        let c = u.matmul(net.beta()).map_err(|_| ())?;
        if u.shape() != (hd, hd) || c.shape() != (hd, od) {
            return Err(());
        }
        for r in 0..hd {
            for col in 0..hd {
                out.set(label * hd + r, col, u.get(r, col));
            }
            for col in 0..od {
                out.set(label * hd + r, hd + col, c.get(r, col));
            }
        }
    }
    // Non-finite statistics would poison the geometric median for every
    // honest contributor; reject them here so only their owner pays.
    if out.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(());
    }
    Ok(out)
}

/// Bitwise model equality over the trained state: per-instance `β`, `P`
/// and sample counts. The frozen hidden layers are identical by
/// construction for sessions sharing a reference, so comparing the
/// mutable state is exact — a session whose pipeline never trained
/// between rounds (the paper's evaluation mode freezes the model outside
/// reconstructions) compares equal to the baseline.
fn models_equal(a: &MultiInstanceModel, b: &MultiInstanceModel) -> bool {
    if a.classes() != b.classes() {
        return false;
    }
    (0..a.classes()).all(|label| match (a.instance(label), b.instance(label)) {
        (Ok(ia), Ok(ib)) => {
            let (na, nb) = (ia.network(), ib.network());
            na.samples_seen() == nb.samples_seen()
                && na.beta().as_slice() == nb.beta().as_slice()
                && na.p().as_slice() == nb.p().as_slice()
        }
        _ => false,
    })
}

/// Total trained samples across a model's instances — the freshness
/// measure for the staleness gate.
fn model_age(m: &MultiInstanceModel) -> u64 {
    (0..m.classes())
        .filter_map(|label| m.instance(label).ok())
        .map(|i| i.samples_seen())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::{Real, Rng};
    use seqdrift_oselm::OsElmConfig;

    fn blob(n: usize, dim: usize, mean: Real, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_normal(&mut x, mean, 0.05);
                x
            })
            .collect()
    }

    fn trained_model(seed: u64) -> MultiInstanceModel {
        let mut m = MultiInstanceModel::new(1, OsElmConfig::new(4, 3).with_seed(seed)).unwrap();
        m.init_train_class(0, &blob(60, 4, 0.3, 5)).unwrap();
        m
    }

    #[test]
    fn models_equal_is_bitwise_on_trained_state() {
        let a = trained_model(1);
        let b = a.clone();
        assert!(models_equal(&a, &b));
        let mut c = a.clone();
        c.seq_train_label(0, &blob(1, 4, 0.3, 6)[0]).unwrap();
        assert!(!models_equal(&a, &c));
        // Different class counts never compare equal.
        let mut two = MultiInstanceModel::new(2, OsElmConfig::new(4, 3).with_seed(1)).unwrap();
        two.init_train_class(0, &blob(60, 4, 0.3, 5)).unwrap();
        two.init_train_class(1, &blob(60, 4, 0.7, 7)).unwrap();
        assert!(!models_equal(&a, &two));
    }

    #[test]
    fn model_age_sums_instance_sample_counts() {
        let mut m = trained_model(2);
        let before = model_age(&m);
        for x in &blob(10, 4, 0.3, 8) {
            m.seq_train_label(0, x).unwrap();
        }
        assert_eq!(model_age(&m), before + 10);
    }

    #[test]
    fn federator_requires_federation_enabled() {
        let engine = FleetEngine::new(seqdrift_fleet::FleetConfig::new(1)).unwrap();
        assert!(matches!(
            Federator::new(&engine, &[]),
            Err(FederateError::Disabled)
        ));
        engine.shutdown();
    }
}
