#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # seqdrift-federate
//!
//! Cooperative cross-session model merging for the fleet — the
//! fleet-level extension of the paper's on-device pipeline (ROADMAP open
//! item 4). Because OS-ELM is linear in its sufficient statistics, model
//! replicas that diverged by sequential training can be fused
//! *analytically* (Ito et al., arXiv 2002.12301): no gradients, no
//! retraining, one closed-form solve. A drift learned by one device
//! (detected, reconstructed) is propagated to its peers before their own
//! detectors have to fire, cutting the fleet-wide adaptation delay.
//!
//! A [`Federator`] drives rounds against a running
//! [`seqdrift_fleet::FleetEngine`]:
//!
//! 1. **Collect** — snapshot every registered session through the shard
//!    FIFOs (so each snapshot lands at a well-defined stream point) and
//!    decode its model.
//! 2. **Gate** — quarantined or `Degraded` sessions are rejected
//!    (counted in `contributions_rejected`); mid-reconstruction sessions
//!    are skipped for the round; sessions whose model still equals the
//!    current fleet baseline have nothing to contribute and are skipped;
//!    contributors lagging the freshest contributor by more than the
//!    configured staleness bound are rejected.
//! 3. **Merge** — the accepted models are fused with the baseline by
//!    [`MultiInstanceModel::merge_with`], which validates
//!    positive-definiteness and finiteness exactly like `seq_train`'s
//!    transactional path; a merge that fails validation rejects the
//!    whole round and leaves the baseline untouched (blast radius zero).
//! 4. **Redistribute** — the merged model is installed into every
//!    healthy session through the same FIFOs ([`FleetEngine`
//!    `install_model`](seqdrift_fleet::FleetEngine::install_model)), and
//!    becomes the new baseline.
//! 5. **Persist** — the merged generation is flushed to the durable
//!    store as a `SQCK` checkpoint, so a resume after power loss
//!    restores the fleet-wide model, not just per-session state.
//!
//! Every step is observable through the fleet metrics
//! (`merge_rounds`, `contributions_accepted`, `contributions_rejected`,
//! `redistributions`).

use seqdrift_core::{CoreError, DriftPipeline};
use seqdrift_fleet::{FederationConfig, FleetEngine, FleetError, SessionId, SessionStatus};
use seqdrift_oselm::{ModelError, MultiInstanceModel};

/// Federation failures.
#[derive(Debug)]
pub enum FederateError {
    /// The engine was built without `FleetConfig::federation`.
    Disabled,
    /// The reference model blob did not decode.
    BadReference(CoreError),
    /// A fleet control operation failed in a way that is not part of the
    /// per-session gating contract (e.g. the engine is shutting down).
    Fleet(FleetError),
    /// Serialising the merged generation failed.
    Persist(CoreError),
}

impl std::fmt::Display for FederateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederateError::Disabled => {
                write!(f, "federation is not enabled on this fleet engine")
            }
            FederateError::BadReference(e) => write!(f, "reference model rejected: {e}"),
            FederateError::Fleet(e) => write!(f, "fleet operation failed: {e}"),
            FederateError::Persist(e) => write!(f, "persisting merged model failed: {e}"),
        }
    }
}

impl std::error::Error for FederateError {}

impl From<FleetError> for FederateError {
    fn from(e: FleetError) -> Self {
        FederateError::Fleet(e)
    }
}

/// What one federation round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundSummary {
    /// A merged model was produced, redistributed and adopted as the new
    /// baseline.
    pub merged: bool,
    /// Contributions accepted into the merge.
    pub accepted: u64,
    /// Contributions rejected by gating (quarantined, degraded, stale)
    /// or discarded because the merge itself failed validation.
    pub rejected: u64,
    /// Sessions skipped without prejudice: mid-reconstruction, vanished
    /// mid-round, or bit-identical to the baseline (nothing to
    /// contribute).
    pub skipped: u64,
    /// Sessions the merged model was installed into.
    pub redistributed: u64,
    /// Durable federated generation written, when the engine has a state
    /// dir and the write succeeded.
    pub persisted_generation: Option<u64>,
}

/// Drives federation rounds against one [`FleetEngine`].
///
/// The federator owns the fleet-wide *baseline*: the model every healthy
/// session is expected to hold between rounds. Sessions whose snapshot
/// differs from the baseline have learned something (a reconstruction
/// after drift) and become contributors; after a successful merge the
/// merged model is the new baseline, so the next round starts from a
/// clean slate and never double-counts a contribution.
pub struct Federator {
    cfg: FederationConfig,
    /// Decoded reference pipeline, reused as the serialisation vehicle
    /// for durable merged generations (model swapped in, then encoded).
    reference: DriftPipeline,
    /// The current fleet-wide model.
    baseline: MultiInstanceModel,
    /// Fleet-wide `samples_processed` at the last round, for
    /// interval-based polling.
    last_round_at: u64,
    rounds_run: u64,
}

impl Federator {
    /// Builds a federator for `engine` from the fleet's reference model
    /// blob (the calibrated pipeline the sessions were created from).
    /// When the engine's durable store holds a persisted federated
    /// generation, its model is restored as the baseline — the
    /// power-loss resume path for the fleet-wide model.
    pub fn new(engine: &FleetEngine, reference_blob: &[u8]) -> Result<Federator, FederateError> {
        let cfg = *engine.federation().ok_or(FederateError::Disabled)?;
        let reference =
            DriftPipeline::from_bytes(reference_blob).map_err(FederateError::BadReference)?;
        let baseline = match engine.load_federated()? {
            Some(blob) => DriftPipeline::from_bytes(&blob)
                .map_err(FederateError::BadReference)?
                .model()
                .clone(),
            None => reference.model().clone(),
        };
        Ok(Federator {
            cfg,
            reference,
            baseline,
            last_round_at: 0,
            rounds_run: 0,
        })
    }

    /// The active federation knobs.
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// Rounds that produced a merged model so far.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// The current fleet-wide baseline model.
    pub fn baseline(&self) -> &MultiInstanceModel {
        &self.baseline
    }

    /// Interval-gated round: runs [`Federator::run_round`] when at least
    /// `FederationConfig::interval` fleet-wide samples were processed
    /// since the last round (or since construction). Returns `None` when
    /// the interval has not elapsed. This is what background pollers
    /// call on a timer.
    pub fn maybe_round(
        &mut self,
        engine: &FleetEngine,
    ) -> Result<Option<RoundSummary>, FederateError> {
        let processed = engine.metrics().samples_processed;
        if processed.saturating_sub(self.last_round_at) < self.cfg.interval {
            return Ok(None);
        }
        self.run_round(engine).map(Some)
    }

    /// Runs one federation round now: collect, gate, merge,
    /// redistribute, persist. Infallible per-session outcomes (a session
    /// quarantined mid-round, a reconstruction in progress) are absorbed
    /// into the [`RoundSummary`] counts; only engine-level failures
    /// (shutdown races, store decode of the federator's own state)
    /// surface as errors.
    pub fn run_round(&mut self, engine: &FleetEngine) -> Result<RoundSummary, FederateError> {
        let mut summary = RoundSummary::default();
        // Collect + health-gate. Quarantine verdicts come from the
        // registry (pre-seeded from the store ledger at open), degraded
        // health from the snapshot itself.
        let mut candidates: Vec<(SessionId, MultiInstanceModel)> = Vec::new();
        for (id, status) in engine.session_statuses() {
            if matches!(status, SessionStatus::Quarantined(_)) {
                summary.rejected += 1;
                continue;
            }
            let blob = match engine.snapshot(id) {
                Ok(blob) => blob,
                // Quarantined between listing and snapshot.
                Err(FleetError::SessionQuarantined(_)) => {
                    summary.rejected += 1;
                    continue;
                }
                // Mid-reconstruction sessions refuse to checkpoint; they
                // get another chance next round.
                Err(FleetError::Core(_)) => {
                    summary.skipped += 1;
                    continue;
                }
                // Evicted mid-round.
                Err(FleetError::UnknownSession(_)) => {
                    summary.skipped += 1;
                    continue;
                }
                Err(e) => return Err(FederateError::Fleet(e)),
            };
            let pipeline = match DriftPipeline::from_bytes(&blob) {
                Ok(p) => p,
                // A snapshot that does not decode is a poisoned
                // contribution, not a federator failure.
                Err(_) => {
                    summary.rejected += 1;
                    continue;
                }
            };
            if pipeline.health() != seqdrift_core::PipelineHealth::Healthy {
                summary.rejected += 1;
                continue;
            }
            let model = pipeline.model();
            if models_equal(model, &self.baseline) {
                // Still on the baseline: nothing learned, nothing to
                // contribute, nothing to install later either (it
                // already holds the model every session will converge
                // to only if a merge happens this round).
                summary.skipped += 1;
                continue;
            }
            candidates.push((id, model.clone()));
        }
        // Staleness gate: contributors lagging the freshest candidate by
        // more than the bound carry statistics too old to trust.
        if let Some(freshest) = candidates.iter().map(|(_, m)| model_age(m)).max() {
            candidates.retain(|(_, m)| {
                let keep = freshest - model_age(m) <= self.cfg.staleness_bound;
                if !keep {
                    summary.rejected += 1;
                }
                keep
            });
        }
        if candidates.len() < self.cfg.min_contributors {
            summary.skipped += candidates.len() as u64;
            engine.record_federation_round(false, 0, summary.rejected);
            self.last_round_at = engine.metrics().samples_processed;
            return Ok(summary);
        }
        // Closed-form merge, transactionally validated. A rejected merge
        // discards the whole round: the baseline and every session stay
        // exactly as they were.
        let models: Vec<&MultiInstanceModel> = candidates.iter().map(|(_, m)| m).collect();
        let merged = match self.baseline.merge_with(&models) {
            Ok(m) => m,
            Err(ModelError::RejectedUpdate(_)) | Err(ModelError::Linalg(_)) => {
                summary.rejected += candidates.len() as u64;
                engine.record_federation_round(false, 0, summary.rejected);
                self.last_round_at = engine.metrics().samples_processed;
                return Ok(summary);
            }
            // Shape/config mismatches mean the fleet was fed sessions
            // from a different reference — a caller bug worth surfacing.
            Err(e) => {
                return Err(FederateError::Persist(CoreError::Model(e)));
            }
        };
        summary.accepted = candidates.len() as u64;
        summary.merged = true;
        // Redistribute through the shard FIFOs: every healthy session —
        // contributors included — adopts the merged model, so after the
        // round the whole fleet sits on the new baseline. Sessions that
        // refuse (reconstruction started since the snapshot) or vanished
        // are left for the next round.
        for (id, status) in engine.session_statuses() {
            if matches!(status, SessionStatus::Quarantined(_)) {
                continue;
            }
            match engine.install_model(id, merged.clone()) {
                Ok(()) => summary.redistributed += 1,
                Err(FleetError::Core(_))
                | Err(FleetError::UnknownSession(_))
                | Err(FleetError::SessionQuarantined(_)) => {}
                Err(e) => return Err(FederateError::Fleet(e)),
            }
        }
        // Durable merged generation: encode through the reference
        // pipeline so the blob is a full, restorable checkpoint.
        self.reference
            .install_model(merged.clone())
            .map_err(FederateError::Persist)?;
        let blob = self.reference.to_bytes().map_err(FederateError::Persist)?;
        summary.persisted_generation = engine.persist_federated(&blob);
        self.baseline = merged;
        self.rounds_run += 1;
        engine.record_federation_round(true, summary.accepted, summary.rejected);
        self.last_round_at = engine.metrics().samples_processed;
        Ok(summary)
    }
}

/// Bitwise model equality over the trained state: per-instance `β`, `P`
/// and sample counts. The frozen hidden layers are identical by
/// construction for sessions sharing a reference, so comparing the
/// mutable state is exact — a session whose pipeline never trained
/// between rounds (the paper's evaluation mode freezes the model outside
/// reconstructions) compares equal to the baseline.
fn models_equal(a: &MultiInstanceModel, b: &MultiInstanceModel) -> bool {
    if a.classes() != b.classes() {
        return false;
    }
    (0..a.classes()).all(|label| match (a.instance(label), b.instance(label)) {
        (Ok(ia), Ok(ib)) => {
            let (na, nb) = (ia.network(), ib.network());
            na.samples_seen() == nb.samples_seen()
                && na.beta().as_slice() == nb.beta().as_slice()
                && na.p().as_slice() == nb.p().as_slice()
        }
        _ => false,
    })
}

/// Total trained samples across a model's instances — the freshness
/// measure for the staleness gate.
fn model_age(m: &MultiInstanceModel) -> u64 {
    (0..m.classes())
        .filter_map(|label| m.instance(label).ok())
        .map(|i| i.samples_seen())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::{Real, Rng};
    use seqdrift_oselm::OsElmConfig;

    fn blob(n: usize, dim: usize, mean: Real, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_normal(&mut x, mean, 0.05);
                x
            })
            .collect()
    }

    fn trained_model(seed: u64) -> MultiInstanceModel {
        let mut m = MultiInstanceModel::new(1, OsElmConfig::new(4, 3).with_seed(seed)).unwrap();
        m.init_train_class(0, &blob(60, 4, 0.3, 5)).unwrap();
        m
    }

    #[test]
    fn models_equal_is_bitwise_on_trained_state() {
        let a = trained_model(1);
        let b = a.clone();
        assert!(models_equal(&a, &b));
        let mut c = a.clone();
        c.seq_train_label(0, &blob(1, 4, 0.3, 6)[0]).unwrap();
        assert!(!models_equal(&a, &c));
        // Different class counts never compare equal.
        let mut two = MultiInstanceModel::new(2, OsElmConfig::new(4, 3).with_seed(1)).unwrap();
        two.init_train_class(0, &blob(60, 4, 0.3, 5)).unwrap();
        two.init_train_class(1, &blob(60, 4, 0.7, 7)).unwrap();
        assert!(!models_equal(&a, &two));
    }

    #[test]
    fn model_age_sums_instance_sample_counts() {
        let mut m = trained_model(2);
        let before = model_age(&m);
        for x in &blob(10, 4, 0.3, 8) {
            m.seq_train_label(0, x).unwrap();
        }
        assert_eq!(model_age(&m), before + 10);
    }

    #[test]
    fn federator_requires_federation_enabled() {
        let engine = FleetEngine::new(seqdrift_fleet::FleetConfig::new(1)).unwrap();
        assert!(matches!(
            Federator::new(&engine, &[]),
            Err(FederateError::Disabled)
        ));
        engine.shutdown();
    }
}
