//! Dependency-free argument parsing.
//!
//! Flags are `--name value` pairs (plus boolean `--label-last` /
//! `--no-header`); the first positional token selects the subcommand.
//! Hand-rolled rather than pulling a parser crate: the grammar is tiny and
//! the workspace keeps its dependency set minimal (DESIGN.md §5).

use seqdrift_core::GuardPolicy;
use std::path::PathBuf;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to execute.
    pub command: Command,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Calibrate a pipeline from labelled CSV and checkpoint it.
    Train(TrainArgs),
    /// Stream unlabelled CSV through a checkpoint.
    Run(RunArgs),
    /// Describe a checkpoint.
    Info(InfoArgs),
    /// Export a synthetic dataset to CSV.
    Synth(SynthArgs),
    /// Replay one CSV across many simulated devices through a fleet engine.
    Fleet(FleetArgs),
    /// Serve a fleet over TCP (the `SQNP` network ingest protocol).
    Serve(ServeArgs),
    /// Multi-threaded load generator replaying a CSV against a server.
    Load(LoadArgs),
}

/// Arguments of `seqdrift train`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainArgs {
    /// Labelled training CSV.
    pub csv: PathBuf,
    /// Checkpoint output path.
    pub out: PathBuf,
    /// Whether the final CSV column is the class label.
    pub label_last: bool,
    /// Whether the CSV has a header row.
    pub has_header: bool,
    /// OS-ELM hidden width.
    pub hidden: usize,
    /// Detection window size `W`.
    pub window: usize,
    /// Weight seed.
    pub seed: u64,
    /// Input-guard policy baked into the checkpoint (`reject` | `clamp` |
    /// `impute`); omit for the default (`reject`).
    pub guard_policy: Option<GuardPolicy>,
    /// Stuck-sensor run threshold baked into the checkpoint (0 disables).
    pub stuck_threshold: Option<u64>,
}

/// Arguments of `seqdrift run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Stream CSV (features only, unless `label_last` strips a trailing
    /// label column — e.g. when replaying a `synth` export).
    pub csv: PathBuf,
    /// Checkpoint to load.
    pub model: PathBuf,
    /// Where to write the adapted checkpoint (optional).
    pub out: Option<PathBuf>,
    /// Where to write a per-event CSV (optional).
    pub events: Option<PathBuf>,
    /// Whether the CSV has a header row.
    pub has_header: bool,
    /// Strip a trailing label column before streaming (ground truth is
    /// never shown to the detector).
    pub label_last: bool,
    /// Override the checkpoint's guard policy for this run.
    pub guard_policy: Option<GuardPolicy>,
    /// Override the checkpoint's stuck-sensor threshold for this run.
    pub stuck_threshold: Option<u64>,
}

/// Arguments of `seqdrift info`.
#[derive(Debug, Clone, PartialEq)]
pub struct InfoArgs {
    /// Checkpoint to describe.
    pub model: PathBuf,
}

/// Arguments of `seqdrift synth`.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthArgs {
    /// Dataset name: `nslkdd`, `fan-sudden`, `fan-gradual`,
    /// `fan-reoccurring`.
    pub dataset: String,
    /// Output directory (receives `train.csv` and `test.csv`).
    pub out: PathBuf,
    /// Generator seed override.
    pub seed: Option<u64>,
    /// Use the shortened quick-scale stream.
    pub quick: bool,
}

/// Arguments of `seqdrift fleet`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetArgs {
    /// Stream CSV replayed to every simulated device (exactly one of
    /// `--csv` and `--scenario` is required).
    pub csv: Option<PathBuf>,
    /// Declarative `.sqsc` scenario driving per-session streams, session
    /// count, guard, faults, and federation (synthetic or a recorded
    /// bundle manifest).
    pub scenario: Option<PathBuf>,
    /// Checkpoint cloned into every session. Required with `--csv`;
    /// optional with `--scenario` (synthetic scenarios calibrate a
    /// reference from their own training split, recorded bundles carry
    /// the blob they were served from).
    pub model: Option<PathBuf>,
    /// Number of simulated devices (sessions).
    pub sessions: usize,
    /// Worker threads (shards).
    pub workers: usize,
    /// Per-shard ingress queue capacity.
    pub queue: usize,
    /// Stream index at which device 0's injected drift begins (omit for a
    /// clean replay with no injected drift).
    pub drift_at: Option<usize>,
    /// Per-device stagger added to the drift onset (device `d` drifts at
    /// `drift_at + d * drift_step`).
    pub drift_step: usize,
    /// Additive feature shift applied once a device has drifted.
    pub drift_shift: f32,
    /// Whether the CSV has a header row.
    pub has_header: bool,
    /// Strip a trailing label column before streaming.
    pub label_last: bool,
    /// Seed for a deterministic fault-injection plan (panic, NaN burst,
    /// corrupt checkpoint, slow session spread over the sessions); omit
    /// for a fault-free run.
    pub inject_faults: Option<u64>,
    /// Override every session's guard policy for this run.
    pub guard_policy: Option<GuardPolicy>,
    /// Override every session's stuck-sensor threshold for this run.
    pub stuck_threshold: Option<u64>,
    /// Root of the crash-safe durable state store: checkpoints and
    /// quarantine verdicts survive power loss, and `--resume` re-homes
    /// surviving sessions from it.
    pub state_dir: Option<PathBuf>,
    /// Resume surviving sessions from `--state-dir` before replaying
    /// (requires `--state-dir`).
    pub resume: bool,
    /// Enable cooperative cross-session model merging: healthy sessions
    /// whose models diverged from the fleet baseline (a reconstruction
    /// after drift) are merged in closed form and the merged model is
    /// redistributed to every healthy session.
    pub federate: bool,
    /// Fleet-wide processed-sample interval between merge rounds.
    pub federate_interval: u64,
    /// Seed for a deterministic model-poisoning plan: a seeded fraction
    /// of the sessions submit corrupted contributions every merge round
    /// (scaled β, rotated Gram, slow bias ramp, colluding group). Chaos
    /// testing for the Byzantine-robust merge; requires `--federate`.
    pub poison: Option<u64>,
}

/// Arguments of `seqdrift serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Reference checkpoint: sessions HELLOed for the first time are
    /// created from it. Omit to serve only sessions resumed from
    /// `--state-dir` (at least one of the two is required).
    pub model: Option<PathBuf>,
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub listen: String,
    /// Worker threads (shards).
    pub workers: usize,
    /// Per-shard ingress queue capacity.
    pub queue: usize,
    /// Blocking-feed deadline in milliseconds before a BUSY reply.
    pub feed_timeout_ms: u64,
    /// Root of the crash-safe durable state store; a graceful drain
    /// (Ctrl-C) flushes every session's final state here.
    pub state_dir: Option<PathBuf>,
    /// Idle-connection eviction timeout in milliseconds.
    pub idle_timeout_ms: u64,
    /// Write the bound address to this file once listening (atomic
    /// write); lets scripts discover an ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Enable cooperative cross-session model merging (requires
    /// `--model`, the fleet's reference checkpoint).
    pub federate: bool,
    /// Fleet-wide processed-sample interval between merge rounds.
    pub federate_interval: u64,
    /// Admission: cap on concurrently open connections (0 = unlimited).
    pub max_conns: usize,
    /// Admission: sustained accepts/sec tolerated per source IP
    /// (0 = unlimited).
    pub accept_rate: f64,
    /// Admission: cap on sample bytes concurrently in flight across all
    /// connections (0 = unlimited).
    pub inflight_cap: u64,
    /// Admission: a connection must complete its first HELLO within this
    /// many milliseconds (0 disables the deadline).
    pub handshake_timeout_ms: u64,
    /// Record live ingest into this directory: every accepted sample row
    /// plus connection events, written at drain as a replayable `.sqsc`
    /// bundle (`seqdrift fleet --scenario <dir>/scenario.sqsc`).
    pub record: Option<PathBuf>,
}

/// Arguments of `seqdrift load`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadArgs {
    /// Stream CSV replayed by every simulated device (exactly one of
    /// `--csv` and `--scenario` is required).
    pub csv: Option<PathBuf>,
    /// Declarative `.sqsc` scenario: each device streams its own
    /// per-session synthesized stream and the bench entry is named after
    /// the scenario.
    pub scenario: Option<PathBuf>,
    /// Server address (`host:port`).
    pub addr: String,
    /// Simulated devices, one connection + session each.
    pub sessions: usize,
    /// Rows per SAMPLE frame.
    pub batch: usize,
    /// First session id (devices use `session0 .. session0+sessions`).
    pub session0: u64,
    /// Where to merge machine-readable results (samples/sec, p50/p99).
    pub bench_json: Option<PathBuf>,
    /// After the replay, fetch each session's snapshot over the wire and
    /// check it is bit-identical to a local replay of the same stream
    /// (requires `--model`, the same checkpoint the server serves).
    pub verify: bool,
    /// Reference checkpoint for `--verify`.
    pub model: Option<PathBuf>,
    /// Whether the CSV has a header row.
    pub has_header: bool,
    /// Strip a trailing label column before streaming.
    pub label_last: bool,
    /// Seconds of zero-progress BUSY replies before a device gives up
    /// (`Client::busy_stall_timeout`); omit for the client default.
    pub busy_stall_timeout: Option<u64>,
    /// Route a subset of devices through an in-process fault-injection
    /// proxy (`ChaosProxy`) and report healthy/victim latency separately.
    pub chaos: bool,
    /// Seed for the deterministic chaos fault schedule: the same seed
    /// replays the same faults against the same connections.
    pub chaos_seed: u64,
    /// How many devices are routed through the proxy (the rest connect
    /// directly); omit for half the fleet.
    pub chaos_victims: Option<usize>,
}

/// Parse failures (each carries the message shown to the user).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
seqdrift — lightweight sequential concept-drift detection

USAGE:
  seqdrift train --csv <file> --out <model.sqdm> [--label-last] [--no-header]
                 [--hidden 22] [--window 100] [--seed 42]
                 [--guard-policy reject|clamp|impute] [--stuck-threshold K]
  seqdrift run   --csv <file> --model <model.sqdm> [--out <updated.sqdm>]
                 [--events <events.csv>] [--no-header] [--label-last]
                 [--guard-policy reject|clamp|impute] [--stuck-threshold K]
  seqdrift info  --model <model.sqdm>
  seqdrift synth --dataset <nslkdd|fan-sudden|fan-gradual|fan-reoccurring>
                 --out <dir> [--seed N] [--quick]
  seqdrift fleet (--csv <file> --model <model.sqdm> | --scenario <file.sqsc>)
                 [--model <model.sqdm>] [--sessions 8] [--workers 4]
                 [--queue 256] [--drift-at N] [--drift-step 25]
                 [--drift-shift 0.3] [--inject-faults SEED]
                 [--guard-policy reject|clamp|impute] [--stuck-threshold K]
                 [--state-dir <dir>] [--resume]
                 [--federate] [--federate-interval 2048] [--poison SEED]
                 [--no-header] [--label-last]
  seqdrift serve [--model <model.sqdm>] [--listen 127.0.0.1:4747] [--workers 4]
                 [--queue 256] [--feed-timeout-ms 10000] [--state-dir <dir>]
                 [--idle-timeout-ms 30000] [--port-file <path>]
                 [--federate] [--federate-interval 2048]
                 [--max-conns 1024] [--accept-rate PER_IP_PER_SEC]
                 [--inflight-cap BYTES] [--handshake-timeout-ms 10000]
                 [--record <dir>]
  seqdrift load  (--csv <file> | --scenario <file.sqsc>) --addr <host:port>
                 [--sessions 4] [--batch 16]
                 [--session0 0] [--bench-json BENCH_ingest.json]
                 [--verify --model <model.sqdm>] [--busy-stall-timeout SECS]
                 [--chaos] [--chaos-seed 42] [--chaos-victims N]
                 [--no-header] [--label-last]
";

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Collects `--flag value` pairs and boolean flags from `argv`.
struct Flags {
    pairs: std::collections::HashMap<String, String>,
    bools: std::collections::HashSet<String>,
}

const BOOL_FLAGS: [&str; 7] = [
    "--chaos",
    "--federate",
    "--label-last",
    "--no-header",
    "--quick",
    "--resume",
    "--verify",
];

impl Flags {
    fn parse(argv: &[String]) -> Result<Flags, ParseError> {
        let mut pairs = std::collections::HashMap::new();
        let mut bools = std::collections::HashSet::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if !a.starts_with("--") {
                return Err(err(format!("unexpected positional argument {a:?}")));
            }
            if BOOL_FLAGS.contains(&a.as_str()) {
                bools.insert(a.clone());
                i += 1;
                continue;
            }
            let value = argv
                .get(i + 1)
                .ok_or_else(|| err(format!("flag {a} needs a value")))?;
            if pairs.insert(a.clone(), value.clone()).is_some() {
                return Err(err(format!("flag {a} given twice")));
            }
            i += 2;
        }
        Ok(Flags { pairs, bools })
    }

    fn take(&mut self, name: &str) -> Option<String> {
        self.pairs.remove(name)
    }

    fn required(&mut self, name: &str) -> Result<String, ParseError> {
        self.take(name)
            .ok_or_else(|| err(format!("missing required flag {name}")))
    }

    fn number<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, ParseError> {
        match self.take(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("flag {name}: cannot parse {v:?}"))),
        }
    }

    fn boolean(&mut self, name: &str) -> bool {
        self.bools.remove(name)
    }

    fn optional<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, ParseError>
    where
        T::Err: std::fmt::Display,
    {
        match self.take(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|e| err(format!("{name}: {e}"))),
        }
    }

    fn finish(self) -> Result<(), ParseError> {
        if let Some(k) = self.pairs.keys().next() {
            return Err(err(format!("unknown flag {k}")));
        }
        if let Some(k) = self.bools.iter().next() {
            return Err(err(format!("flag {k} not valid for this command")));
        }
        Ok(())
    }
}

impl Cli {
    /// Parses a full argv (excluding the binary name).
    pub fn parse(argv: &[String]) -> Result<Cli, ParseError> {
        let (cmd, rest) = argv
            .split_first()
            .ok_or_else(|| err(format!("no command given\n\n{USAGE}")))?;
        let mut flags = Flags::parse(rest)?;
        let command = match cmd.as_str() {
            "train" => {
                let a = TrainArgs {
                    csv: flags.required("--csv")?.into(),
                    out: flags.required("--out")?.into(),
                    label_last: flags.boolean("--label-last"),
                    has_header: !flags.boolean("--no-header"),
                    hidden: flags.number("--hidden", 22usize)?,
                    window: flags.number("--window", 100usize)?,
                    seed: flags.number("--seed", 42u64)?,
                    guard_policy: flags.optional("--guard-policy")?,
                    stuck_threshold: flags.optional("--stuck-threshold")?,
                };
                if a.hidden == 0 || a.window == 0 {
                    return Err(err("--hidden and --window must be positive"));
                }
                Command::Train(a)
            }
            "run" => Command::Run(RunArgs {
                csv: flags.required("--csv")?.into(),
                model: flags.required("--model")?.into(),
                out: flags.take("--out").map(Into::into),
                events: flags.take("--events").map(Into::into),
                has_header: !flags.boolean("--no-header"),
                label_last: flags.boolean("--label-last"),
                guard_policy: flags.optional("--guard-policy")?,
                stuck_threshold: flags.optional("--stuck-threshold")?,
            }),
            "fleet" => {
                let a = FleetArgs {
                    csv: flags.take("--csv").map(Into::into),
                    scenario: flags.take("--scenario").map(Into::into),
                    model: flags.take("--model").map(Into::into),
                    sessions: flags.number("--sessions", 8usize)?,
                    workers: flags.number("--workers", 4usize)?,
                    queue: flags.number("--queue", 256usize)?,
                    drift_at: match flags.take("--drift-at") {
                        None => None,
                        Some(v) => Some(
                            v.parse()
                                .map_err(|_| err(format!("--drift-at: cannot parse {v:?}")))?,
                        ),
                    },
                    drift_step: flags.number("--drift-step", 25usize)?,
                    drift_shift: flags.number("--drift-shift", 0.3f32)?,
                    has_header: !flags.boolean("--no-header"),
                    label_last: flags.boolean("--label-last"),
                    inject_faults: match flags.take("--inject-faults") {
                        None => None,
                        Some(v) => Some(
                            v.parse()
                                .map_err(|_| err(format!("--inject-faults: cannot parse {v:?}")))?,
                        ),
                    },
                    guard_policy: flags.optional("--guard-policy")?,
                    stuck_threshold: flags.optional("--stuck-threshold")?,
                    state_dir: flags.take("--state-dir").map(Into::into),
                    resume: flags.boolean("--resume"),
                    federate: flags.boolean("--federate"),
                    federate_interval: flags.number("--federate-interval", 2048u64)?,
                    poison: match flags.take("--poison") {
                        None => None,
                        Some(v) => Some(
                            v.parse()
                                .map_err(|_| err(format!("--poison: cannot parse {v:?}")))?,
                        ),
                    },
                };
                if a.sessions == 0 || a.workers == 0 || a.queue == 0 {
                    return Err(err("--sessions, --workers and --queue must be positive"));
                }
                match (&a.csv, &a.scenario) {
                    (None, None) => return Err(err("fleet needs --csv or --scenario")),
                    (Some(_), Some(_)) => {
                        return Err(err("--csv and --scenario are mutually exclusive"));
                    }
                    (Some(_), None) if a.model.is_none() => {
                        return Err(err("--csv requires --model (the session checkpoint)"));
                    }
                    _ => {}
                }
                if a.scenario.is_some() && a.drift_at.is_some() {
                    return Err(err(
                        "--drift-at conflicts with --scenario (the scenario owns the drift plan)",
                    ));
                }
                if a.scenario.is_some() && a.inject_faults.is_some() {
                    return Err(err(
                        "--inject-faults conflicts with --scenario (use a 'faults fleet SEED' line)",
                    ));
                }
                if a.resume && a.state_dir.is_none() {
                    return Err(err("--resume requires --state-dir"));
                }
                if a.federate_interval == 0 {
                    return Err(err("--federate-interval must be positive"));
                }
                if a.poison.is_some() && !a.federate {
                    return Err(err("--poison requires --federate"));
                }
                Command::Fleet(a)
            }
            "serve" => {
                let a = ServeArgs {
                    model: flags.take("--model").map(Into::into),
                    listen: flags
                        .take("--listen")
                        .unwrap_or_else(|| "127.0.0.1:4747".to_string()),
                    workers: flags.number("--workers", 4usize)?,
                    queue: flags.number("--queue", 256usize)?,
                    feed_timeout_ms: flags.number("--feed-timeout-ms", 10_000u64)?,
                    state_dir: flags.take("--state-dir").map(Into::into),
                    idle_timeout_ms: flags.number("--idle-timeout-ms", 30_000u64)?,
                    port_file: flags.take("--port-file").map(Into::into),
                    federate: flags.boolean("--federate"),
                    federate_interval: flags.number("--federate-interval", 2048u64)?,
                    max_conns: flags.number("--max-conns", 1024usize)?,
                    accept_rate: flags.number("--accept-rate", 0.0f64)?,
                    inflight_cap: flags.number("--inflight-cap", 256u64 << 20)?,
                    handshake_timeout_ms: flags.number("--handshake-timeout-ms", 10_000u64)?,
                    record: flags.take("--record").map(Into::into),
                };
                if a.workers == 0 || a.queue == 0 {
                    return Err(err("--workers and --queue must be positive"));
                }
                if a.accept_rate < 0.0 || !a.accept_rate.is_finite() {
                    return Err(err("--accept-rate must be a finite non-negative number"));
                }
                if a.model.is_none() && a.state_dir.is_none() {
                    return Err(err("serve needs --model and/or --state-dir"));
                }
                if a.federate && a.model.is_none() {
                    return Err(err("--federate requires --model (the fleet reference)"));
                }
                if a.federate_interval == 0 {
                    return Err(err("--federate-interval must be positive"));
                }
                Command::Serve(a)
            }
            "load" => {
                let a = LoadArgs {
                    csv: flags.take("--csv").map(Into::into),
                    scenario: flags.take("--scenario").map(Into::into),
                    addr: flags.required("--addr")?,
                    sessions: flags.number("--sessions", 4usize)?,
                    batch: flags.number("--batch", 16usize)?,
                    session0: flags.number("--session0", 0u64)?,
                    bench_json: flags.take("--bench-json").map(Into::into),
                    verify: flags.boolean("--verify"),
                    model: flags.take("--model").map(Into::into),
                    has_header: !flags.boolean("--no-header"),
                    label_last: flags.boolean("--label-last"),
                    busy_stall_timeout: flags.optional("--busy-stall-timeout")?,
                    chaos: flags.boolean("--chaos"),
                    chaos_seed: flags.number("--chaos-seed", 42u64)?,
                    chaos_victims: flags.optional("--chaos-victims")?,
                };
                if a.sessions == 0 || a.batch == 0 {
                    return Err(err("--sessions and --batch must be positive"));
                }
                match (&a.csv, &a.scenario) {
                    (None, None) => return Err(err("load needs --csv or --scenario")),
                    (Some(_), Some(_)) => {
                        return Err(err("--csv and --scenario are mutually exclusive"));
                    }
                    _ => {}
                }
                if a.scenario.is_some() && a.chaos {
                    return Err(err(
                        "--chaos conflicts with --scenario (use a 'faults chaos SEED' line)",
                    ));
                }
                if a.verify && a.model.is_none() {
                    return Err(err("--verify requires --model"));
                }
                if a.busy_stall_timeout == Some(0) {
                    return Err(err("--busy-stall-timeout must be positive"));
                }
                if !a.chaos && a.chaos_victims.is_some() {
                    return Err(err("--chaos-victims requires --chaos"));
                }
                if a.chaos_victims.is_some_and(|v| v == 0 || v > a.sessions) {
                    return Err(err("--chaos-victims must be in 1..=sessions"));
                }
                Command::Load(a)
            }
            "info" => Command::Info(InfoArgs {
                model: flags.required("--model")?.into(),
            }),
            "synth" => Command::Synth(SynthArgs {
                dataset: flags.required("--dataset")?,
                out: flags.required("--out")?.into(),
                seed: match flags.take("--seed") {
                    None => None,
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| err(format!("--seed: cannot parse {v:?}")))?,
                    ),
                },
                quick: flags.boolean("--quick"),
            }),
            "--help" | "-h" | "help" => return Err(err(USAGE)),
            other => return Err(err(format!("unknown command {other:?}\n\n{USAGE}"))),
        };
        flags.finish()?;
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_train_with_defaults() {
        let cli = Cli::parse(&argv("train --csv a.csv --out m.sqdm --label-last")).unwrap();
        match cli.command {
            Command::Train(a) => {
                assert_eq!(a.csv, PathBuf::from("a.csv"));
                assert!(a.label_last);
                assert!(a.has_header);
                assert_eq!(a.hidden, 22);
                assert_eq!(a.window, 100);
                assert_eq!(a.seed, 42);
                assert_eq!(a.guard_policy, None);
                assert_eq!(a.stuck_threshold, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_train_overrides() {
        let cli = Cli::parse(&argv(
            "train --csv a.csv --out m.sqdm --hidden 8 --window 25 --seed 7 --no-header \
             --guard-policy clamp --stuck-threshold 5",
        ))
        .unwrap();
        match cli.command {
            Command::Train(a) => {
                assert_eq!((a.hidden, a.window, a.seed), (8, 25, 7));
                assert!(!a.has_header);
                assert!(!a.label_last);
                assert_eq!(a.guard_policy, Some(GuardPolicy::Clamp));
                assert_eq!(a.stuck_threshold, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_run_and_optionals() {
        let cli = Cli::parse(&argv("run --csv s.csv --model m.sqdm")).unwrap();
        match cli.command {
            Command::Run(a) => {
                assert_eq!(a.out, None);
                assert_eq!(a.events, None);
                assert!(!a.label_last);
            }
            other => panic!("{other:?}"),
        }
        let cli = Cli::parse(&argv(
            "run --csv s.csv --model m.sqdm --out u.sqdm --events e.csv \
             --guard-policy impute --stuck-threshold 3",
        ))
        .unwrap();
        match cli.command {
            Command::Run(a) => {
                assert_eq!(a.out, Some(PathBuf::from("u.sqdm")));
                assert_eq!(a.events, Some(PathBuf::from("e.csv")));
                assert_eq!(a.guard_policy, Some(GuardPolicy::ImputeLast));
                assert_eq!(a.stuck_threshold, Some(3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(&argv("")).is_err());
        assert!(Cli::parse(&argv("frobnicate")).is_err());
        assert!(Cli::parse(&argv("train --csv a.csv")).is_err()); // missing --out
        assert!(Cli::parse(&argv("train --csv a.csv --out m --hidden zero")).is_err());
        assert!(Cli::parse(&argv("train --csv a.csv --out m --unknown x")).is_err());
        assert!(Cli::parse(&argv("info --model m --quick")).is_err()); // bool not valid here
        assert!(Cli::parse(&argv("train --csv a.csv --csv b.csv --out m")).is_err());
        assert!(Cli::parse(&argv("train --csv")).is_err()); // dangling flag
        assert!(Cli::parse(&argv("train stray --csv a.csv --out m")).is_err());
        let e = Cli::parse(&argv("run --csv s --model m --guard-policy drop")).unwrap_err();
        assert!(e.0.contains("reject, clamp, impute"), "{e}");
        assert!(Cli::parse(&argv("run --csv s --model m --stuck-threshold -1")).is_err());
    }

    #[test]
    fn help_is_an_error_carrying_usage() {
        let e = Cli::parse(&argv("--help")).unwrap_err();
        assert!(e.0.contains("USAGE"));
    }

    #[test]
    fn parses_fleet() {
        let cli = Cli::parse(&argv("fleet --csv s.csv --model m.sqdm")).unwrap();
        match cli.command {
            Command::Fleet(a) => {
                assert_eq!(a.csv, Some(PathBuf::from("s.csv")));
                assert_eq!(a.scenario, None);
                assert_eq!(a.model, Some(PathBuf::from("m.sqdm")));
                assert_eq!((a.sessions, a.workers, a.queue), (8, 4, 256));
                assert_eq!(a.drift_at, None);
                assert_eq!(a.drift_step, 25);
                assert!(a.has_header);
                assert_eq!(a.inject_faults, None);
                assert_eq!(a.guard_policy, None);
                assert_eq!(a.stuck_threshold, None);
                assert_eq!(a.state_dir, None);
                assert!(!a.resume);
                assert!(!a.federate);
                assert_eq!(a.federate_interval, 2048);
            }
            other => panic!("{other:?}"),
        }
        let cli = Cli::parse(&argv(
            "fleet --csv s.csv --model m.sqdm --sessions 32 --workers 2 --queue 16 \
             --drift-at 100 --drift-step 10 --drift-shift 0.5 --inject-faults 99 --no-header \
             --guard-policy reject --stuck-threshold 8 --state-dir state --resume",
        ))
        .unwrap();
        match cli.command {
            Command::Fleet(a) => {
                assert_eq!((a.sessions, a.workers, a.queue), (32, 2, 16));
                assert_eq!(a.drift_at, Some(100));
                assert_eq!((a.drift_step, a.drift_shift), (10, 0.5));
                assert!(!a.has_header);
                assert_eq!(a.inject_faults, Some(99));
                assert_eq!(a.guard_policy, Some(GuardPolicy::Reject));
                assert_eq!(a.stuck_threshold, Some(8));
                assert_eq!(a.state_dir, Some(PathBuf::from("state")));
                assert!(a.resume);
            }
            other => panic!("{other:?}"),
        }
        assert!(Cli::parse(&argv("fleet --csv s.csv --model m --workers 0")).is_err());
        assert!(Cli::parse(&argv("fleet --csv s.csv --model m --inject-faults x")).is_err());
        // --resume without --state-dir is meaningless.
        assert!(Cli::parse(&argv("fleet --csv s.csv --model m --resume")).is_err());
    }

    #[test]
    fn parses_federation_flags() {
        let cli = Cli::parse(&argv(
            "fleet --csv s.csv --model m.sqdm --federate --federate-interval 64",
        ))
        .unwrap();
        match cli.command {
            Command::Fleet(a) => {
                assert!(a.federate);
                assert_eq!(a.federate_interval, 64);
                assert_eq!(a.poison, None);
            }
            other => panic!("{other:?}"),
        }
        let cli = Cli::parse(&argv(
            "fleet --csv s.csv --model m.sqdm --federate --poison 7",
        ))
        .unwrap();
        match cli.command {
            Command::Fleet(a) => {
                assert_eq!(a.poison, Some(7));
            }
            other => panic!("{other:?}"),
        }
        // Poisoning corrupts merge contributions; without merging there
        // is nothing to poison.
        assert!(Cli::parse(&argv("fleet --csv s --model m --poison 7")).is_err());
        assert!(Cli::parse(&argv("fleet --csv s --model m --federate --poison x")).is_err());
        let cli = Cli::parse(&argv("serve --model m.sqdm --federate")).unwrap();
        match cli.command {
            Command::Serve(a) => {
                assert!(a.federate);
                assert_eq!(a.federate_interval, 2048);
            }
            other => panic!("{other:?}"),
        }
        // Federation needs the reference checkpoint to decode merged
        // generations from; state-dir-only serving cannot enable it.
        assert!(Cli::parse(&argv("serve --state-dir s --federate")).is_err());
        assert!(Cli::parse(&argv("fleet --csv s --model m --federate-interval 0")).is_err());
    }

    #[test]
    fn parses_serve() {
        let cli = Cli::parse(&argv("serve --model m.sqdm")).unwrap();
        match cli.command {
            Command::Serve(a) => {
                assert_eq!(a.model, Some(PathBuf::from("m.sqdm")));
                assert_eq!(a.listen, "127.0.0.1:4747");
                assert_eq!((a.workers, a.queue), (4, 256));
                assert_eq!(a.feed_timeout_ms, 10_000);
                assert_eq!(a.idle_timeout_ms, 30_000);
                assert_eq!(a.state_dir, None);
                assert_eq!(a.port_file, None);
                assert_eq!(a.max_conns, 1024);
                assert_eq!(a.accept_rate, 0.0);
                assert_eq!(a.inflight_cap, 256 << 20);
                assert_eq!(a.handshake_timeout_ms, 10_000);
            }
            other => panic!("{other:?}"),
        }
        let cli = Cli::parse(&argv(
            "serve --state-dir state --listen 0.0.0.0:0 --workers 2 --queue 8 \
             --feed-timeout-ms 50 --idle-timeout-ms 500 --port-file p.txt \
             --max-conns 3 --accept-rate 2.5 --inflight-cap 65536 \
             --handshake-timeout-ms 250",
        ))
        .unwrap();
        match cli.command {
            Command::Serve(a) => {
                assert_eq!(a.model, None);
                assert_eq!(a.state_dir, Some(PathBuf::from("state")));
                assert_eq!(a.listen, "0.0.0.0:0");
                assert_eq!((a.workers, a.queue), (2, 8));
                assert_eq!((a.feed_timeout_ms, a.idle_timeout_ms), (50, 500));
                assert_eq!(a.port_file, Some(PathBuf::from("p.txt")));
                assert_eq!(a.max_conns, 3);
                assert_eq!(a.accept_rate, 2.5);
                assert_eq!(a.inflight_cap, 65_536);
                assert_eq!(a.handshake_timeout_ms, 250);
            }
            other => panic!("{other:?}"),
        }
        // Neither a reference checkpoint nor resumable state: nothing to serve.
        assert!(Cli::parse(&argv("serve")).is_err());
        assert!(Cli::parse(&argv("serve --model m --workers 0")).is_err());
        assert!(Cli::parse(&argv("serve --model m --accept-rate -1")).is_err());
        assert!(Cli::parse(&argv("serve --model m --accept-rate nan")).is_err());
    }

    #[test]
    fn parses_load() {
        let cli = Cli::parse(&argv("load --csv s.csv --addr 127.0.0.1:4747")).unwrap();
        match cli.command {
            Command::Load(a) => {
                assert_eq!(a.csv, Some(PathBuf::from("s.csv")));
                assert_eq!(a.scenario, None);
                assert_eq!(a.addr, "127.0.0.1:4747");
                assert_eq!((a.sessions, a.batch, a.session0), (4, 16, 0));
                assert!(!a.verify);
                assert_eq!(a.bench_json, None);
                assert!(a.has_header);
                assert_eq!(a.busy_stall_timeout, None);
                assert!(!a.chaos);
                assert_eq!(a.chaos_seed, 42);
                assert_eq!(a.chaos_victims, None);
            }
            other => panic!("{other:?}"),
        }
        let cli = Cli::parse(&argv(
            "load --csv s.csv --addr h:1 --sessions 8 --batch 4 --session0 100 \
             --bench-json B.json --verify --model m.sqdm --no-header --label-last \
             --busy-stall-timeout 5",
        ))
        .unwrap();
        match cli.command {
            Command::Load(a) => {
                assert_eq!((a.sessions, a.batch, a.session0), (8, 4, 100));
                assert_eq!(a.bench_json, Some(PathBuf::from("B.json")));
                assert!(a.verify && a.label_last && !a.has_header);
                assert_eq!(a.model, Some(PathBuf::from("m.sqdm")));
                assert_eq!(a.busy_stall_timeout, Some(5));
            }
            other => panic!("{other:?}"),
        }
        assert!(Cli::parse(&argv("load --csv s.csv")).is_err()); // missing --addr
        assert!(Cli::parse(&argv("load --csv s --addr h:1 --verify")).is_err());
        assert!(Cli::parse(&argv("load --csv s --addr h:1 --batch 0")).is_err());
        assert!(Cli::parse(&argv("load --csv s --addr h:1 --busy-stall-timeout 0")).is_err());
        assert!(Cli::parse(&argv("load --csv s --addr h:1 --busy-stall-timeout x")).is_err());
    }

    #[test]
    fn parses_scenario_flags() {
        let cli = Cli::parse(&argv("fleet --scenario drill.sqsc")).unwrap();
        match cli.command {
            Command::Fleet(a) => {
                assert_eq!(a.scenario, Some(PathBuf::from("drill.sqsc")));
                assert_eq!(a.csv, None);
                assert_eq!(a.model, None);
            }
            other => panic!("{other:?}"),
        }
        let cli = Cli::parse(&argv("load --scenario drill.sqsc --addr h:1")).unwrap();
        match cli.command {
            Command::Load(a) => {
                assert_eq!(a.scenario, Some(PathBuf::from("drill.sqsc")));
                assert_eq!(a.csv, None);
            }
            other => panic!("{other:?}"),
        }
        let cli = Cli::parse(&argv("serve --model m.sqdm --record out/dir")).unwrap();
        match cli.command {
            Command::Serve(a) => assert_eq!(a.record, Some(PathBuf::from("out/dir"))),
            other => panic!("{other:?}"),
        }
        // Exactly one stream source; the scenario owns drift/fault plans.
        assert!(Cli::parse(&argv("fleet")).is_err());
        assert!(Cli::parse(&argv("fleet --csv s.csv")).is_err()); // csv needs --model
        assert!(Cli::parse(&argv("fleet --csv s.csv --model m --scenario d.sqsc")).is_err());
        assert!(Cli::parse(&argv("fleet --scenario d.sqsc --drift-at 5")).is_err());
        assert!(Cli::parse(&argv("fleet --scenario d.sqsc --inject-faults 1")).is_err());
        assert!(Cli::parse(&argv("load --addr h:1")).is_err());
        assert!(Cli::parse(&argv("load --csv s --scenario d.sqsc --addr h:1")).is_err());
        assert!(Cli::parse(&argv("load --scenario d.sqsc --addr h:1 --chaos")).is_err());
        // Scenario-mode overrides that stay legal: guard and federation.
        assert!(Cli::parse(&argv(
            "fleet --scenario d.sqsc --guard-policy clamp --federate"
        ))
        .is_ok());
    }

    #[test]
    fn parses_chaos_flags() {
        let cli = Cli::parse(&argv(
            "load --csv s.csv --addr h:1 --sessions 8 --chaos --chaos-seed 7 --chaos-victims 3",
        ))
        .unwrap();
        match cli.command {
            Command::Load(a) => {
                assert!(a.chaos);
                assert_eq!(a.chaos_seed, 7);
                assert_eq!(a.chaos_victims, Some(3));
            }
            other => panic!("{other:?}"),
        }
        // Victim count without the mode, or out of range, is rejected.
        assert!(Cli::parse(&argv("load --csv s --addr h:1 --chaos-victims 2")).is_err());
        assert!(Cli::parse(&argv(
            "load --csv s --addr h:1 --sessions 2 --chaos --chaos-victims 3"
        ))
        .is_err());
        assert!(Cli::parse(&argv("load --csv s --addr h:1 --chaos --chaos-victims 0")).is_err());
    }

    #[test]
    fn parses_synth() {
        let cli = Cli::parse(&argv(
            "synth --dataset fan-sudden --out data --seed 9 --quick",
        ))
        .unwrap();
        match cli.command {
            Command::Synth(a) => {
                assert_eq!(a.dataset, "fan-sudden");
                assert_eq!(a.seed, Some(9));
                assert!(a.quick);
            }
            other => panic!("{other:?}"),
        }
    }
}
