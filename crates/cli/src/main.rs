//! `seqdrift` binary entry point (thin shim over [`seqdrift_cli`]).

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match seqdrift_cli::Cli::parse(&argv) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = seqdrift_cli::run(&cli, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
