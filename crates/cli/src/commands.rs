//! Subcommand implementations.

use crate::args::{FleetArgs, InfoArgs, LoadArgs, RunArgs, ServeArgs, SynthArgs, TrainArgs};
use seqdrift_core::pipeline::PipelineEvent;
use seqdrift_core::{
    CoreError, DetectorConfig, DriftPipeline, GuardConfig, GuardPolicy, PipelineConfig,
};
use seqdrift_datasets::drift::DriftSchedule;
use seqdrift_datasets::fan::{self, FanConfig, FanScenario};
use seqdrift_datasets::nslkdd::{self, NslKddConfig};
use seqdrift_datasets::{loader, DriftDataset, Sample};
use seqdrift_federate::{Federator, PoisonInjector};
use seqdrift_fleet::{
    FaultInjector, FederationConfig, FleetConfig, FleetEngine, FleetError, FleetEvent,
    MetricsSnapshot, SessionId, ShutdownReport,
};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use seqdrift_scenario::{GuardMode, ScenarioPlayer};
use std::io::Write;

type Out<'a> = &'a mut dyn Write;

fn fail(context: &str, e: impl std::fmt::Display) -> String {
    format!("{context}: {e}")
}

/// One-line durability health summary for `fleet`/`serve` shutdown output.
/// Degrade/recover transitions strictly alternate, so a surplus of
/// degrades means the run ended still degraded.
fn durability_health_line(m: &MetricsSnapshot, out: Out<'_>) {
    let health = if m.durability_degraded > m.durability_recovered {
        "DEGRADED"
    } else {
        "DURABLE"
    };
    writeln!(
        out,
        "durability health: {health} ({} degrade(s), {} recovery(ies), \
         {} write(s) buffered, {} retry attempt(s))",
        m.durability_degraded,
        m.durability_recovered,
        m.durable_flushes_buffered,
        m.durable_flush_retries
    )
    .ok();
}

/// Merges the `--guard-policy` / `--stuck-threshold` flags into `base`;
/// `None` when neither flag was given (keep whatever the checkpoint says).
fn guard_override(
    base: GuardConfig,
    policy: Option<GuardPolicy>,
    stuck: Option<u64>,
) -> Option<GuardConfig> {
    if policy.is_none() && stuck.is_none() {
        return None;
    }
    let mut g = base;
    if let Some(p) = policy {
        g.policy = p;
    }
    if let Some(k) = stuck {
        g.stuck_threshold = k;
    }
    Some(g)
}

/// `seqdrift train`: calibrate from labelled CSV, checkpoint to disk.
pub fn train(a: &TrainArgs, out: Out<'_>) -> Result<(), String> {
    let samples = loader::load_csv(&a.csv, a.has_header, a.label_last)
        .map_err(|e| fail("reading training CSV", e))?;
    if samples.is_empty() {
        return Err("training CSV contains no rows".into());
    }
    let classes = samples.iter().map(|s| s.label).max().unwrap_or(0) + 1;
    let dim = samples[0].dim();
    writeln!(
        out,
        "loaded {} samples, {dim} features, {classes} classes",
        samples.len()
    )
    .ok();

    let mut model =
        MultiInstanceModel::new(classes, OsElmConfig::new(dim, a.hidden).with_seed(a.seed))
            .map_err(|e| fail("building model", e))?;
    let mut buckets: Vec<Vec<Vec<Real>>> = vec![Vec::new(); classes];
    for s in &samples {
        buckets[s.label].push(s.x.clone());
    }
    for (label, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            return Err(format!("class {label} has no training samples"));
        }
        model
            .init_train_class(label, bucket)
            .map_err(|e| fail("initial training", e))?;
    }

    let pairs: Vec<(usize, &[Real])> = samples.iter().map(|s| (s.label, s.x.as_slice())).collect();
    let det = DetectorConfig::new(classes, dim).with_window(a.window);
    let pipeline_cfg = guard_override(GuardConfig::new(), a.guard_policy, a.stuck_threshold)
        .map(|g| PipelineConfig::new(det.clone()).with_guard(g));
    let pipeline = DriftPipeline::calibrate_with(model, det, &pairs, pipeline_cfg)
        .map_err(|e| fail("calibration", e))?;
    let g = pipeline.guard_config();
    writeln!(
        out,
        "guard: policy {}, stuck threshold {}",
        g.policy, g.stuck_threshold
    )
    .ok();
    writeln!(
        out,
        "calibrated: theta_drift = {:.4}, theta_error = {:.6}, window = {}",
        pipeline.detector().config().theta_drift,
        pipeline.detector().config().theta_error,
        a.window
    )
    .ok();

    let bytes = pipeline.to_bytes().map_err(|e| fail("serialising", e))?;
    seqdrift_store::atomic_write(&a.out, &bytes).map_err(|e| fail("writing checkpoint", e))?;
    writeln!(out, "wrote {} bytes to {}", bytes.len(), a.out.display()).ok();
    Ok(())
}

/// `seqdrift run`: stream an unlabelled CSV through a checkpoint.
pub fn run_stream(a: &RunArgs, out: Out<'_>) -> Result<(), String> {
    let blob = std::fs::read(&a.model).map_err(|e| fail("reading checkpoint", e))?;
    let mut pipeline =
        DriftPipeline::from_bytes(&blob).map_err(|e| fail("decoding checkpoint", e))?;
    let samples = loader::load_csv(&a.csv, a.has_header, a.label_last)
        .map_err(|e| fail("reading stream CSV", e))?;
    if samples.is_empty() {
        return Err("stream CSV contains no rows".into());
    }
    let expected = pipeline.detector().config().dim;
    if samples[0].dim() != expected {
        return Err(format!(
            "stream has {} features but the checkpoint expects {expected}",
            samples[0].dim()
        ));
    }

    if let Some(g) = guard_override(*pipeline.guard_config(), a.guard_policy, a.stuck_threshold) {
        pipeline
            .set_guard_config(g)
            .map_err(|e| fail("applying guard override", e))?;
        writeln!(
            out,
            "guard override: policy {}, stuck threshold {}",
            g.policy, g.stuck_threshold
        )
        .ok();
    }

    let start_index = pipeline.samples_processed();
    let counters_before = pipeline.guard_counters();
    let mut detections = 0usize;
    let mut guard_rejected = 0u64;
    for s in &samples {
        // A guard rejection drops the sample and keeps streaming; anything
        // else (I/O-level corruption, invalid state) still aborts the run.
        let o = match pipeline.process(&s.x) {
            Ok(o) => o,
            Err(
                e @ (CoreError::NonFiniteInput { .. }
                | CoreError::OversizedInput { .. }
                | CoreError::StuckSensor { .. }),
            ) => {
                guard_rejected += 1;
                if guard_rejected <= 10 {
                    writeln!(
                        out,
                        "stream position {}: sample rejected by guard ({e})",
                        pipeline.samples_processed()
                    )
                    .ok();
                }
                continue;
            }
            Err(e) => return Err(fail("processing sample", e)),
        };
        if o.drift_detected {
            detections += 1;
            let top: Vec<String> = pipeline
                .detector()
                .dimension_contributions(3)
                .into_iter()
                .map(|(d, v)| format!("f{d} ({v:.3})"))
                .collect();
            writeln!(
                out,
                "sample {}: DRIFT detected (distance {:.4}; top features {}); reconstructing",
                pipeline.samples_processed() - 1,
                o.drift_distance,
                top.join(", ")
            )
            .ok();
        }
    }
    if guard_rejected > 10 {
        writeln!(
            out,
            "({} further guard rejection(s) not shown)",
            guard_rejected - 10
        )
        .ok();
    }
    writeln!(
        out,
        "processed {} samples (stream positions {}..{}), {detections} drift(s)",
        pipeline.samples_processed() - start_index,
        start_index,
        pipeline.samples_processed()
    )
    .ok();
    let sanitized = pipeline.guard_counters().sanitized - counters_before.sanitized;
    if guard_rejected > 0 || sanitized > 0 {
        writeln!(
            out,
            "guard: {guard_rejected} sample(s) rejected, {sanitized} repaired (health {:?})",
            pipeline.health()
        )
        .ok();
    }

    if let Some(events_path) = &a.events {
        let mut csv = String::from("event,stream_index,value\n");
        for e in pipeline.events() {
            match e {
                PipelineEvent::DriftDetected { index, dist } => {
                    csv.push_str(&format!("drift,{index},{dist}\n"));
                }
                PipelineEvent::Reconstructed {
                    index,
                    new_theta_drift,
                } => {
                    csv.push_str(&format!("reconstructed,{index},{new_theta_drift}\n"));
                }
                PipelineEvent::Degraded { index, reason } => {
                    csv.push_str(&format!("degraded,{index},{reason}\n"));
                }
                PipelineEvent::Recovered { index } => {
                    csv.push_str(&format!("recovered,{index},\n"));
                }
            }
        }
        seqdrift_store::atomic_write(events_path, csv.as_bytes())
            .map_err(|e| fail("writing events CSV", e))?;
        writeln!(out, "events written to {}", events_path.display()).ok();
    }

    if let Some(out_path) = &a.out {
        if pipeline.is_reconstructing() {
            writeln!(
                out,
                "note: stream ended mid-reconstruction; checkpoint not written \
                 (feed more samples and save at a quiescent point)"
            )
            .ok();
        } else {
            let bytes = pipeline.to_bytes().map_err(|e| fail("serialising", e))?;
            seqdrift_store::atomic_write(out_path, &bytes)
                .map_err(|e| fail("writing checkpoint", e))?;
            writeln!(out, "adapted checkpoint written to {}", out_path.display()).ok();
        }
    }
    Ok(())
}

/// `seqdrift info`: describe a checkpoint.
pub fn info(a: &InfoArgs, out: Out<'_>) -> Result<(), String> {
    let blob = std::fs::read(&a.model).map_err(|e| fail("reading checkpoint", e))?;
    let pipeline = DriftPipeline::from_bytes(&blob).map_err(|e| fail("decoding checkpoint", e))?;
    let det = pipeline.detector().config();
    writeln!(
        out,
        "checkpoint: {} ({} bytes)",
        a.model.display(),
        blob.len()
    )
    .ok();
    writeln!(
        out,
        "model: {} classes x {} features, {} hidden nodes",
        det.classes,
        det.dim,
        pipeline
            .model()
            .instance(0)
            .map(|i| i.network().hidden_dim())
            .unwrap_or(0)
    )
    .ok();
    writeln!(
        out,
        "detector: window = {}, theta_drift = {:.4}, theta_error = {:.6}, metric = {:?}",
        det.window, det.theta_drift, det.theta_error, det.metric
    )
    .ok();
    writeln!(
        out,
        "history: {} samples processed, detector has seen {}",
        pipeline.samples_processed(),
        pipeline.detector().samples_seen()
    )
    .ok();
    for c in 0..det.classes {
        writeln!(
            out,
            "  class {c}: trained count {}, test count {}",
            pipeline.detector().trained_centroids().count(c),
            pipeline.detector().test_centroids().count(c)
        )
        .ok();
    }
    Ok(())
}

/// `seqdrift fleet`: replay one CSV across S simulated devices, each a
/// session restored from the same checkpoint, with per-device staggered
/// drift injection so devices flag drift at different stream positions.
/// With `--scenario`, the `.sqsc` file owns the streams, session roster,
/// guard, fault, and federation plan instead.
pub fn fleet(a: &FleetArgs, out: Out<'_>) -> Result<(), String> {
    if a.scenario.is_some() {
        return fleet_scenario(a, out);
    }
    let (csv, model) = match (&a.csv, &a.model) {
        (Some(c), Some(m)) => (c, m),
        _ => return Err("fleet needs --csv with --model, or --scenario".into()),
    };
    let mut blob = std::fs::read(model).map_err(|e| fail("reading checkpoint", e))?;
    let mut reference =
        DriftPipeline::from_bytes(&blob).map_err(|e| fail("decoding checkpoint", e))?;
    let expected = reference.detector().config().dim;
    let samples = loader::load_csv(csv, a.has_header, a.label_last)
        .map_err(|e| fail("reading stream CSV", e))?;
    if samples.is_empty() {
        return Err("stream CSV contains no rows".into());
    }
    if samples[0].dim() != expected {
        return Err(format!(
            "stream has {} features but the checkpoint expects {expected}",
            samples[0].dim()
        ));
    }
    // A guard override is applied to the decoded checkpoint and re-encoded
    // so every session clones the overridden configuration.
    if let Some(g) = guard_override(*reference.guard_config(), a.guard_policy, a.stuck_threshold) {
        reference
            .set_guard_config(g)
            .map_err(|e| fail("applying guard override", e))?;
        blob = reference.to_bytes().map_err(|e| fail("serialising", e))?;
        writeln!(
            out,
            "guard override: policy {}, stuck threshold {}",
            g.policy, g.stuck_threshold
        )
        .ok();
    }

    let mut cfg = FleetConfig::new(a.workers).with_queue_capacity(a.queue);
    if let Some(seed) = a.inject_faults {
        let injector = FaultInjector::from_seed(seed, a.sessions as u64);
        writeln!(out, "fault plan (seed {seed}):").ok();
        for line in injector.describe().lines() {
            writeln!(out, "  {line}").ok();
        }
        cfg = cfg.with_fault_injector(injector);
    }
    if let Some(dir) = &a.state_dir {
        cfg = cfg.with_state_dir(dir);
        writeln!(out, "durable state store: {}", dir.display()).ok();
    }
    if a.federate {
        cfg = cfg.with_federation(FederationConfig::default().with_interval(a.federate_interval));
        writeln!(
            out,
            "federation: merge round every {} fleet-wide samples",
            a.federate_interval
        )
        .ok();
    }
    let engine = FleetEngine::new(cfg).map_err(|e| fail("starting fleet", e))?;
    if let Some(rec) = engine.recovery_report() {
        writeln!(
            out,
            "state recovery: {} session(s) restored ({} generation(s) kept, \
             {} corrupt frame(s) dropped, {} stale temp(s) swept)",
            rec.sessions_recovered,
            rec.generations_kept,
            rec.corrupt_frames_dropped,
            rec.stale_temps_deleted
        )
        .ok();
    }

    // Sessions re-homed from the store (or still quarantined in its
    // ledger) must not be re-created from the reference checkpoint: a
    // fresh create() would discard the survivor — or lift the verdict.
    let mut preexisting = std::collections::HashSet::new();
    if a.resume {
        let resumed = engine
            .resume()
            .map_err(|e| fail("resuming from state dir", e))?;
        if resumed.is_empty() {
            writeln!(out, "resume: no surviving sessions in the state dir").ok();
        }
        for &(id, samples_processed) in &resumed {
            writeln!(
                out,
                "resumed device {} at its sample {samples_processed}",
                id.0
            )
            .ok();
            preexisting.insert(id.0);
        }
    }
    for (id, reason) in engine.quarantined_sessions() {
        writeln!(
            out,
            "device {}: quarantined by a previous run ({reason})",
            id.0
        )
        .ok();
        preexisting.insert(id.0);
    }
    for d in 0..a.sessions {
        if preexisting.contains(&(d as u64)) {
            continue;
        }
        engine
            .create_from_bytes(SessionId(d as u64), &blob)
            .map_err(|e| fail("creating session", e))?;
    }
    writeln!(
        out,
        "fleet: {} sessions over {} workers (queue capacity {})",
        a.sessions, a.workers, a.queue
    )
    .ok();
    let mut federator = if a.federate {
        Some(Federator::new(&engine, &blob).map_err(|e| fail("starting federation", e))?)
    } else {
        None
    };
    if let Some(seed) = a.poison {
        if let Some(f) = federator.take() {
            let ids: Vec<u64> = (0..a.sessions as u64).collect();
            let injector = PoisonInjector::from_seed(seed, &ids);
            writeln!(out, "poison plan (seed {seed}):").ok();
            for line in injector.describe().lines() {
                writeln!(out, "  {line}").ok();
            }
            federator = Some(f.with_poison(injector));
        }
    }

    // Device d's injected drift starts drift_step samples after device d-1's,
    // so detections should stagger the same way across the fleet.
    let schedules: Vec<Option<DriftSchedule>> = (0..a.sessions)
        .map(|d| {
            a.drift_at
                .map(|at| DriftSchedule::sudden(at + d * a.drift_step))
        })
        .collect();
    let mut rng = Rng::seed_from(0xF1EE7);
    let mut shifted = vec![0.0 as Real; expected];
    // Federation rounds trigger at deterministic stream positions: this
    // feeder-side counter of delivered rows decides the boundaries, not
    // the worker-side `samples_processed` gauge (which races with the
    // shards and made `--federate --inject-faults` replays diverge).
    // Snapshots travel through the shard FIFOs behind every sample and
    // fault already enqueued, so a fixed boundary sees a fixed model.
    let mut fed_since_round: u64 = 0;
    for (t, s) in samples.iter().enumerate() {
        for (d, schedule) in schedules.iter().enumerate() {
            let use_new = schedule
                .as_ref()
                .map(|sch| sch.resolve(t, &mut rng).0)
                .unwrap_or(false);
            let x: &[Real] = if use_new {
                for (o, &v) in shifted.iter_mut().zip(s.x.iter()) {
                    *o = v + a.drift_shift as Real;
                }
                &shifted
            } else {
                &s.x
            };
            // A quarantined device stays quarantined for the rest of the
            // replay; the fleet keeps serving every other device. The
            // attempt still counts towards the round boundary: attempts
            // are deterministic, outcomes race with the verdict.
            match engine.feed_blocking(SessionId(d as u64), x) {
                Ok(()) | Err(FleetError::SessionQuarantined(_)) => {}
                Err(e) => return Err(fail("feeding sample", e)),
            }
            fed_since_round += 1;
        }
        if let Some(f) = federator.as_mut() {
            if fed_since_round >= f.config().interval {
                fed_since_round = 0;
                f.run_round(&engine)
                    .map_err(|e| fail("federation round", e))?;
            }
        }
    }

    let report = engine.shutdown();
    report_fleet_shutdown(
        &report,
        a.federate,
        a.inject_faults.is_some(),
        a.state_dir.is_some(),
        out,
    );
    Ok(())
}

/// Prints a fleet [`ShutdownReport`]: drained events, aggregate metrics,
/// and the federation / fault-tolerance / durability summaries the run's
/// flags make relevant. Shared by the CSV and scenario replay paths.
fn report_fleet_shutdown(
    report: &ShutdownReport,
    federate: bool,
    faults: bool,
    durable: bool,
    out: Out<'_>,
) {
    for event in &report.events {
        match event {
            FleetEvent::Pipeline {
                id,
                event: PipelineEvent::DriftDetected { index, dist },
            } => {
                writeln!(
                    out,
                    "device {}: DRIFT at its sample {index} (distance {dist:.4})",
                    id.0
                )
                .ok();
            }
            FleetEvent::Pipeline {
                id,
                event:
                    PipelineEvent::Reconstructed {
                        index,
                        new_theta_drift,
                    },
            } => {
                writeln!(
                    out,
                    "device {}: reconstructed at its sample {index} \
                     (new theta_drift {new_theta_drift:.4})",
                    id.0
                )
                .ok();
            }
            FleetEvent::Pipeline {
                id,
                event: PipelineEvent::Degraded { index, reason },
            } => {
                writeln!(
                    out,
                    "device {}: DEGRADED at its sample {index} ({reason})",
                    id.0
                )
                .ok();
            }
            FleetEvent::Pipeline {
                id,
                event: PipelineEvent::Recovered { index },
            } => {
                writeln!(out, "device {}: recovered at its sample {index}", id.0).ok();
            }
            FleetEvent::SessionPanicked { id, at_delivery } => {
                writeln!(
                    out,
                    "device {}: PANIC at delivery {at_delivery} (caught)",
                    id.0
                )
                .ok();
            }
            FleetEvent::SessionRestored {
                id,
                resumed_at_sample,
                restarts_in_window,
            } => {
                writeln!(
                    out,
                    "device {}: restored from checkpoint at sample {resumed_at_sample} \
                     (restart {restarts_in_window} in window)",
                    id.0
                )
                .ok();
            }
            FleetEvent::SessionQuarantined { id, reason } => {
                writeln!(out, "device {}: QUARANTINED ({reason})", id.0).ok();
            }
            FleetEvent::WorkerRespawned {
                shard,
                recovered,
                lost,
            } => {
                writeln!(
                    out,
                    "worker {shard}: respawned ({recovered} session(s) recovered, {lost} lost)"
                )
                .ok();
            }
            FleetEvent::DurabilityDegraded { reason } => {
                writeln!(out, "durability: DEGRADED ({reason})").ok();
            }
            FleetEvent::DurabilityRestored {
                flushed_checkpoints,
                drained_ledger_writes,
            } => {
                writeln!(
                    out,
                    "durability: restored ({flushed_checkpoints} buffered checkpoint(s) \
                     flushed, {drained_ledger_writes} ledger write(s) drained)"
                )
                .ok();
            }
            FleetEvent::MergeRoundRejected { candidates, reason } => {
                writeln!(
                    out,
                    "federation: merge round REJECTED ({candidates} candidate(s), {reason})"
                )
                .ok();
            }
            FleetEvent::SessionExcludedLowTrust { id, trust } => {
                writeln!(
                    out,
                    "device {}: excluded from merging (trust {trust:.3} below floor)",
                    id.0
                )
                .ok();
            }
        }
    }
    let m = &report.metrics;
    writeln!(
        out,
        "fleet done: {} sessions, {} samples processed, {} drift(s), \
         {} reconstruction(s), {} busy rejection(s)",
        report.sessions.len(),
        m.samples_processed,
        m.drifts_flagged,
        m.reconstructions_completed,
        m.busy_rejections
    )
    .ok();
    if federate {
        writeln!(
            out,
            "federation: {} merge round(s) ({} rejected wholesale), {} contribution(s) \
             accepted, {} rejected ({} health, {} stale, {} non-PD, {} outlier, \
             {} low-trust), {} redistribution(s)",
            m.merge_rounds,
            m.merge_rounds_rejected,
            m.contributions_accepted,
            m.contributions_rejected,
            m.rejected_health,
            m.rejected_staleness,
            m.rejected_non_pd,
            m.rejected_deviation,
            m.rejected_low_trust,
            m.redistributions
        )
        .ok();
    }
    if faults || m.panics_caught > 0 {
        writeln!(
            out,
            "fault tolerance: {} panic(s) caught, {} restore(s), {} quarantined, \
             {} worker respawn(s)",
            m.panics_caught, m.sessions_restored, m.sessions_quarantined, m.workers_respawned
        )
        .ok();
    }
    if m.sessions_degraded > 0 || m.samples_sanitized > 0 {
        writeln!(
            out,
            "guard: {} degraded episode(s), {} recovery(ies), {} sample(s) repaired, \
             {} sample(s) dropped",
            m.sessions_degraded, m.sessions_recovered, m.samples_sanitized, m.samples_dropped
        )
        .ok();
    }
    if durable {
        writeln!(
            out,
            "durability: {} checkpoint flush(es), {} flush failure(s)",
            m.durable_flushes, m.durable_flush_failures
        )
        .ok();
        durability_health_line(m, out);
    }
    if !report.quarantined.is_empty() {
        for (id, reason) in &report.quarantined {
            writeln!(out, "quarantined at shutdown: device {} ({reason})", id.0).ok();
        }
    }
}

/// Maps a scenario guard mode onto the core guard policy.
fn guard_mode_to_policy(mode: GuardMode) -> GuardPolicy {
    match mode {
        GuardMode::Reject => GuardPolicy::Reject,
        GuardMode::Clamp => GuardPolicy::Clamp,
        GuardMode::ImputeLast => GuardPolicy::ImputeLast,
    }
}

/// Calibrates a reference pipeline from a synthetic scenario's own
/// training split: the same deterministic samples every consumer (eval,
/// fleet, load `--verify`) derives from the scenario seed.
fn scenario_reference(player: &ScenarioPlayer) -> Result<Vec<u8>, String> {
    let s = player
        .scenario()
        .synthetic()
        .map_err(|e| fail("deriving a reference model", e))?;
    let pairs = player
        .train_pairs()
        .map_err(|e| fail("synthesizing training data", e))?;
    let mut model = MultiInstanceModel::new(
        s.classes,
        OsElmConfig::new(s.dim, 22.min(s.train.max(4))).with_seed(s.seed),
    )
    .map_err(|e| fail("building reference model", e))?;
    let mut buckets: Vec<Vec<Vec<Real>>> = vec![Vec::new(); s.classes];
    for (label, x) in &pairs {
        buckets[*label].push(x.clone());
    }
    for (label, bucket) in buckets.iter().enumerate() {
        model
            .init_train_class(label, bucket)
            .map_err(|e| fail("training reference model", e))?;
    }
    let refs: Vec<(usize, &[Real])> = pairs.iter().map(|(l, x)| (*l, x.as_slice())).collect();
    let det = DetectorConfig::new(s.classes, s.dim).with_window(100);
    let pipeline = DriftPipeline::calibrate_with(model, det, &refs, None)
        .map_err(|e| fail("calibrating reference model", e))?;
    pipeline
        .to_bytes()
        .map_err(|e| fail("serialising reference model", e))
}

/// `seqdrift fleet --scenario`: replay a declarative `.sqsc` scenario —
/// synthetic streams synthesized from the scenario seed, or a recorded
/// bundle captured off a live server — through an in-process fleet. The
/// scenario supplies the session roster, per-session streams, guard
/// policy, fleet fault plan, and federation cadence; `--guard-policy` /
/// `--stuck-threshold` / `--federate` flags override it.
fn fleet_scenario(a: &FleetArgs, out: Out<'_>) -> Result<(), String> {
    let path = a
        .scenario
        .as_deref()
        .ok_or("fleet_scenario without --scenario")?;
    let player = ScenarioPlayer::from_file(path).map_err(|e| fail("loading scenario", e))?;
    let sessions = player.sessions();
    if sessions.is_empty() {
        return Err(format!("scenario '{}' has no sessions", player.name()));
    }
    let synth = player.scenario().synthetic().ok().cloned();

    // Reference checkpoint: an explicit --model wins; recorded bundles
    // carry the blob they were served from; synthetic scenarios calibrate
    // one from their own deterministic training split.
    let mut blob = match &a.model {
        Some(m) => std::fs::read(m).map_err(|e| fail("reading checkpoint", e))?,
        None => match player.reference_model() {
            Some(b) => b.to_vec(),
            None => scenario_reference(&player)?,
        },
    };
    let mut reference =
        DriftPipeline::from_bytes(&blob).map_err(|e| fail("decoding checkpoint", e))?;
    let expected = reference.detector().config().dim;
    if expected != player.dim() {
        return Err(format!(
            "scenario streams {} features but the checkpoint expects {expected}",
            player.dim()
        ));
    }

    // Guard plan: CLI flags override the scenario's guard line per field.
    let spec_guard = synth.as_ref().and_then(|s| s.guard.clone());
    let policy = a
        .guard_policy
        .or(spec_guard.as_ref().map(|g| guard_mode_to_policy(g.mode)));
    let stuck = a
        .stuck_threshold
        .or(spec_guard.as_ref().and_then(|g| g.stuck.map(|k| k as u64)));
    if let Some(g) = guard_override(*reference.guard_config(), policy, stuck) {
        reference
            .set_guard_config(g)
            .map_err(|e| fail("applying guard policy", e))?;
        blob = reference.to_bytes().map_err(|e| fail("serialising", e))?;
        writeln!(
            out,
            "guard: policy {}, stuck threshold {}",
            g.policy, g.stuck_threshold
        )
        .ok();
    }

    let mut cfg = FleetConfig::new(a.workers).with_queue_capacity(a.queue);
    let fault_seed = synth.as_ref().and_then(|s| s.faults.fleet);
    if let Some(seed) = fault_seed {
        let injector = FaultInjector::from_seed(seed, sessions.len() as u64);
        writeln!(out, "fault plan (seed {seed}):").ok();
        for line in injector.describe().lines() {
            writeln!(out, "  {line}").ok();
        }
        cfg = cfg.with_fault_injector(injector);
    }
    if let Some(dir) = &a.state_dir {
        cfg = cfg.with_state_dir(dir);
        writeln!(out, "durable state store: {}", dir.display()).ok();
    }
    // Federation cadence: an explicit --federate wins; otherwise the
    // scenario's `federate N` line arms it at the scenario's interval.
    let fed_interval = if a.federate {
        Some(a.federate_interval)
    } else {
        synth.as_ref().and_then(|s| s.federate)
    };
    if let Some(interval) = fed_interval {
        cfg = cfg.with_federation(FederationConfig::default().with_interval(interval));
        writeln!(
            out,
            "federation: merge round every {interval} fleet-wide samples"
        )
        .ok();
    }
    let engine = FleetEngine::new(cfg).map_err(|e| fail("starting fleet", e))?;
    for &id in &sessions {
        engine
            .create_from_bytes(SessionId(id), &blob)
            .map_err(|e| fail("creating session", e))?;
    }
    let mut federator = if fed_interval.is_some() {
        Some(Federator::new(&engine, &blob).map_err(|e| fail("starting federation", e))?)
    } else {
        None
    };
    if let Some(seed) = a.poison.or(synth.as_ref().and_then(|s| s.faults.poison)) {
        if let Some(f) = federator.take() {
            let injector = PoisonInjector::from_seed(seed, &sessions);
            writeln!(out, "poison plan (seed {seed}):").ok();
            for line in injector.describe().lines() {
                writeln!(out, "  {line}").ok();
            }
            federator = Some(f.with_poison(injector));
        }
    }

    // Synthesize (or load) every per-session stream up front, then feed
    // t-major so hot sessions interleave the way live ingest would.
    let mut streams = Vec::with_capacity(sessions.len());
    for &id in &sessions {
        streams.push(
            player
                .stream(id)
                .map_err(|e| fail("synthesizing stream", e))?,
        );
    }
    let total: usize = streams.iter().map(Vec::len).sum();
    writeln!(
        out,
        "scenario '{}': {} session(s) over {} workers, {total} total samples",
        player.name(),
        sessions.len(),
        a.workers
    )
    .ok();
    let max_len = streams.iter().map(Vec::len).max().unwrap_or(0);
    let mut fed_since_round: u64 = 0;
    for t in 0..max_len {
        for (i, &id) in sessions.iter().enumerate() {
            let Some(row) = streams[i].get(t) else {
                continue;
            };
            match engine.feed_blocking(SessionId(id), row) {
                Ok(()) | Err(FleetError::SessionQuarantined(_)) => {}
                Err(e) => return Err(fail("feeding sample", e)),
            }
            fed_since_round += 1;
        }
        if let Some(f) = federator.as_mut() {
            if fed_since_round >= f.config().interval {
                fed_since_round = 0;
                f.run_round(&engine)
                    .map_err(|e| fail("federation round", e))?;
            }
        }
    }

    let report = engine.shutdown();
    report_fleet_shutdown(
        &report,
        fed_interval.is_some(),
        fault_seed.is_some(),
        a.state_dir.is_some(),
        out,
    );
    Ok(())
}

/// Process-wide Ctrl-C flag: the handler only sets this; the accept loop
/// polls it and performs the graceful drain on the main thread.
static SIGINT_SEEN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Installs a SIGINT handler that flips [`SIGINT_SEEN`], using the libc
/// `signal` entry point std already links — no new dependency. Returns
/// whether installation succeeded.
#[cfg(unix)]
fn install_sigint_handler() -> bool {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: a single relaxed atomic store.
        SIGINT_SEEN.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIG_ERR: usize = usize::MAX;
    // SAFETY: `signal` is the POSIX libc function; the handler does
    // nothing beyond an atomic store, which is async-signal-safe.
    unsafe { signal(SIGINT, on_sigint as *const () as usize) != SIG_ERR }
}

#[cfg(not(unix))]
fn install_sigint_handler() -> bool {
    false
}

/// `seqdrift serve`: run the TCP ingest server until Ctrl-C, then drain
/// gracefully (flushing durable state when `--state-dir` is set).
pub fn serve(a: &ServeArgs, out: Out<'_>) -> Result<(), String> {
    if install_sigint_handler() {
        writeln!(out, "press Ctrl-C to drain and exit").ok();
    } else {
        writeln!(
            out,
            "warning: no SIGINT handler on this platform; kill to stop"
        )
        .ok();
    }
    serve_with_stop(a, out, &SIGINT_SEEN)
}

/// The body of `serve`, stoppable through any flag — unit tests and the
/// e2e suite drive it with their own `AtomicBool` instead of a signal.
pub fn serve_with_stop(
    a: &ServeArgs,
    out: Out<'_>,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<(), String> {
    use seqdrift_server::{AdmissionConfig, Server, ServerConfig};
    use std::time::Duration;

    let mut fleet_cfg = FleetConfig::new(a.workers)
        .with_queue_capacity(a.queue)
        .with_feed_timeout(Duration::from_millis(a.feed_timeout_ms));
    if let Some(dir) = &a.state_dir {
        fleet_cfg = fleet_cfg.with_state_dir(dir);
        writeln!(out, "durable state store: {}", dir.display()).ok();
    }
    if a.federate {
        fleet_cfg = fleet_cfg
            .with_federation(FederationConfig::default().with_interval(a.federate_interval));
        writeln!(
            out,
            "federation: merge round every {} fleet-wide samples",
            a.federate_interval
        )
        .ok();
    }
    let mut cfg = ServerConfig::new(fleet_cfg)
        .with_idle_timeout(Duration::from_millis(a.idle_timeout_ms))
        .with_admission(AdmissionConfig {
            max_connections: a.max_conns,
            per_ip_accepts_per_sec: a.accept_rate,
            max_bytes_in_flight: a.inflight_cap,
            handshake_timeout: Duration::from_millis(a.handshake_timeout_ms),
            ..AdmissionConfig::default()
        });
    if let Some(model) = &a.model {
        let blob = std::fs::read(model).map_err(|e| fail("reading checkpoint", e))?;
        cfg = cfg.with_reference(blob);
    }
    if let Some(dir) = &a.record {
        cfg = cfg.with_record(dir.clone());
        writeln!(out, "recording ingest to {}", dir.display()).ok();
    }
    let server = Server::bind(&a.listen, cfg).map_err(|e| fail("binding server", e))?;
    if let Some(rec) = server.recovery_report() {
        writeln!(
            out,
            "state recovery: {} session(s) restored ({} generation(s) kept, \
             {} corrupt frame(s) dropped, {} stale temp(s) swept)",
            rec.sessions_recovered,
            rec.generations_kept,
            rec.corrupt_frames_dropped,
            rec.stale_temps_deleted
        )
        .ok();
    }
    let addr = server.local_addr();
    writeln!(
        out,
        "listening on {addr} ({} workers, queue {}, idle timeout {} ms)",
        a.workers, a.queue, a.idle_timeout_ms
    )
    .ok();
    if let Some(port_file) = &a.port_file {
        seqdrift_store::atomic_write(port_file, addr.to_string().as_bytes())
            .map_err(|e| fail("writing port file", e))?;
    }

    let report = server.run(|| stop.load(std::sync::atomic::Ordering::Relaxed));

    for &(id, samples) in &report.resumed {
        writeln!(out, "resumed device {id} at its sample {samples}").ok();
    }
    let n = &report.net;
    writeln!(
        out,
        "net: {} connection(s) accepted ({} idle-evicted, {} protocol-dropped), \
         {} frame(s) in / {} out, {} NACK(s), {} BUSY repl(ies)",
        n.connections_accepted,
        n.connections_evicted_idle,
        n.connections_dropped_protocol,
        n.frames_rx,
        n.frames_tx,
        n.nacks_sent,
        n.busy_replies
    )
    .ok();
    writeln!(
        out,
        "resilience: {} reconnect(s) resumed {} sample(s); admission shed {} \
         connection(s)/frame(s), {} handshake timeout(s)",
        n.reconnects, n.resumed_samples, n.admission_rejections, n.handshake_timeouts
    )
    .ok();
    let m = &report.fleet.metrics;
    writeln!(
        out,
        "fleet: {} session(s) drained, {} sample(s) processed, {} drift(s), \
         {} reconstruction(s)",
        report.fleet.sessions.len(),
        m.samples_processed,
        m.drifts_flagged,
        m.reconstructions_completed
    )
    .ok();
    if a.federate {
        writeln!(
            out,
            "federation: {} merge round(s) ({} rejected wholesale), {} contribution(s) \
             accepted, {} rejected ({} health, {} stale, {} non-PD, {} outlier, \
             {} low-trust), {} redistribution(s)",
            m.merge_rounds,
            m.merge_rounds_rejected,
            m.contributions_accepted,
            m.contributions_rejected,
            m.rejected_health,
            m.rejected_staleness,
            m.rejected_non_pd,
            m.rejected_deviation,
            m.rejected_low_trust,
            m.redistributions
        )
        .ok();
    }
    if a.state_dir.is_some() {
        writeln!(
            out,
            "durability: {} checkpoint flush(es), {} flush failure(s)",
            m.durable_flushes, m.durable_flush_failures
        )
        .ok();
        durability_health_line(m, out);
    }
    for (id, reason) in &report.fleet.quarantined {
        writeln!(out, "quarantined: device {} ({reason})", id.0).ok();
    }
    match &report.recording {
        Some(Ok(manifest)) => {
            writeln!(out, "recorded scenario bundle: {}", manifest.display()).ok();
        }
        Some(Err(e)) => {
            writeln!(out, "recording FAILED: {e}").ok();
        }
        None => {}
    }
    writeln!(out, "drained; bye").ok();
    Ok(())
}

/// `seqdrift load`: multi-threaded load generator. Each simulated device
/// opens one connection, HELLOs its own session, replays the CSV in
/// batches, and records the round-trip latency of every batch.
pub fn load(a: &LoadArgs, out: Out<'_>) -> Result<(), String> {
    use seqdrift_bench::json::{latency_percentiles, merge_into_file, IngestEntry};
    use seqdrift_server::{ChaosConfig, ChaosProxy, Client, ReconnectPolicy, ResilientClient};
    use std::time::Instant;

    // Device roster: `(session id, flattened rows)`. With `--csv` every
    // device replays the same stream; with `--scenario` each device
    // streams its own deterministic per-session stream and the bench
    // entry is attributed to the scenario.
    type Roster = Vec<(u64, std::sync::Arc<Vec<Real>>)>;
    let (dim, devices, scenario_name): (usize, Roster, Option<String>) = if let Some(path) =
        &a.scenario
    {
        let player = ScenarioPlayer::from_file(path).map_err(|e| fail("loading scenario", e))?;
        let sessions = player.sessions();
        if sessions.is_empty() {
            return Err(format!("scenario '{}' has no sessions", player.name()));
        }
        if player.dim() == 0 {
            return Err(format!("scenario '{}' has dimension 0", player.name()));
        }
        let mut devices = Vec::with_capacity(sessions.len());
        for &id in &sessions {
            let stream = player
                .stream(id)
                .map_err(|e| fail("synthesizing stream", e))?;
            let mut flat = Vec::with_capacity(stream.len() * player.dim());
            for row in &stream {
                flat.extend_from_slice(row);
            }
            devices.push((id, std::sync::Arc::new(flat)));
        }
        (player.dim(), devices, Some(player.name().to_string()))
    } else {
        let csv = a.csv.as_ref().ok_or("load needs --csv or --scenario")?;
        let samples = loader::load_csv(csv, a.has_header, a.label_last)
            .map_err(|e| fail("reading stream CSV", e))?;
        if samples.is_empty() {
            return Err("stream CSV contains no rows".into());
        }
        let dim = samples[0].dim();
        let mut rows: Vec<Real> = Vec::with_capacity(samples.len() * dim);
        for s in &samples {
            if s.dim() != dim {
                return Err(format!(
                    "ragged CSV: row with {} features after rows with {dim}",
                    s.dim()
                ));
            }
            rows.extend_from_slice(&s.x);
        }
        let rows = std::sync::Arc::new(rows);
        let devices = (0..a.sessions)
            .map(|d| (a.session0 + d as u64, std::sync::Arc::clone(&rows)))
            .collect();
        (dim, devices, None)
    };
    let n_devices = devices.len();
    let total_rows_all: usize = devices.iter().map(|(_, r)| r.len() / dim).sum();
    match &scenario_name {
        Some(name) => writeln!(
            out,
            "scenario '{name}': {total_rows_all} rows x {dim} features over {n_devices} \
             device(s), {} rows/frame, target {}",
            a.batch, a.addr
        )
        .ok(),
        None => writeln!(
            out,
            "loaded {} rows x {dim} features; {n_devices} device(s), {} rows/frame, target {}",
            total_rows_all / n_devices.max(1),
            a.batch,
            a.addr
        )
        .ok(),
    };

    struct DeviceRun {
        session: u64,
        total_rows: u64,
        latencies_us: Vec<f64>,
        busy_retries: u64,
        reconnects: u64,
        replayed_rows: u64,
        recovered_rows: u64,
        resume_from: u64,
        snapshot: Option<Vec<u8>>,
        victim: bool,
    }

    // Chaos mode: a deterministic fault-injection proxy sits in front of
    // the server, and the first `victims` devices are routed through it
    // (with reconnect-capable clients); the rest connect directly so the
    // run also measures collateral damage on healthy traffic.
    let chaos_proxy = if a.chaos {
        use std::net::ToSocketAddrs;
        let upstream = a
            .addr
            .to_socket_addrs()
            .map_err(|e| fail("resolving server address", e))?
            .next()
            .ok_or("server address resolved to nothing")?;
        let proxy = ChaosProxy::spawn(upstream, ChaosConfig::all_faults(a.chaos_seed))
            .map_err(|e| fail("starting chaos proxy", e))?;
        Some(proxy)
    } else {
        None
    };
    let victims = if a.chaos {
        a.chaos_victims.unwrap_or(n_devices.div_ceil(2))
    } else {
        0
    };
    if let Some(proxy) = &chaos_proxy {
        writeln!(
            out,
            "chaos: seed {}, every fault family armed; {victims} victim device(s) via {}",
            a.chaos_seed,
            proxy.local_addr()
        )
        .ok();
    }

    let wall = Instant::now();
    let mut handles = Vec::new();
    for (d, (session, rows)) in devices.iter().enumerate() {
        let session = *session;
        let rows = std::sync::Arc::clone(rows);
        let total_rows = (rows.len() / dim) as u64;
        let batch_rows = a.batch;
        let want_snapshot = a.verify;
        let stall_timeout = a.busy_stall_timeout;
        if d < victims {
            let proxy_addr = match &chaos_proxy {
                Some(p) => p.local_addr(),
                None => continue,
            };
            let chaos_seed = a.chaos_seed;
            handles.push(std::thread::spawn(move || -> Result<DeviceRun, String> {
                let policy = ReconnectPolicy {
                    max_attempts: 12,
                    base: std::time::Duration::from_millis(5),
                    cap: std::time::Duration::from_millis(500),
                    seed: chaos_seed ^ session.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                };
                let mut rc = ResilientClient::new(proxy_addr, session, dim as u32, policy)
                    .map_err(|e| format!("device {session}: chaos client: {e}"))?;
                // Short read timeout so a blackholed reply surfaces as a
                // reconnect instead of a long hang.
                rc.read_timeout = Some(std::time::Duration::from_secs(2));
                if let Some(secs) = stall_timeout {
                    rc.busy_stall_timeout = std::time::Duration::from_secs(secs);
                }
                let resume_from = rc
                    .hello()
                    .map_err(|e| format!("device {session}: hello: {e}"))?;
                let report = rc
                    .run_stream(&rows, batch_rows)
                    .map_err(|e| format!("device {session}: stream: {e}"))?;
                let snapshot = want_snapshot
                    .then(|| {
                        rc.snapshot()
                            .map_err(|e| format!("device {session}: snapshot: {e}"))
                    })
                    .transpose()?;
                let reconnects = rc.total_reconnects;
                rc.bye()
                    .map_err(|e| format!("device {session}: bye: {e}"))?;
                Ok(DeviceRun {
                    session,
                    total_rows,
                    latencies_us: report.latencies_us.iter().map(|&us| us as f64).collect(),
                    busy_retries: report.busy_retries,
                    reconnects,
                    replayed_rows: report.replayed_rows,
                    recovered_rows: report.recovered_rows,
                    resume_from,
                    snapshot,
                    victim: true,
                })
            }));
            continue;
        }
        let addr = a.addr.clone();
        handles.push(std::thread::spawn(move || -> Result<DeviceRun, String> {
            let (mut client, hello) = Client::connect(&*addr, session, dim as u32)
                .map_err(|e| format!("device {session}: connect: {e}"))?;
            if let Some(secs) = stall_timeout {
                client.busy_stall_timeout = std::time::Duration::from_secs(secs);
            }
            // After a server restart the session resumes mid-stream; skip
            // the rows its durable state already reflects.
            let start_row = (hello.resume_from as usize).min(rows.len() / dim);
            let mut latencies_us = Vec::new();
            for chunk in rows[start_row * dim..].chunks(batch_rows * dim) {
                let t = Instant::now();
                client
                    .send_all(chunk)
                    .map_err(|e| format!("device {session}: send: {e}"))?;
                latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            }
            let snapshot = if want_snapshot {
                Some(
                    client
                        .snapshot()
                        .map_err(|e| format!("device {session}: snapshot: {e}"))?,
                )
            } else {
                None
            };
            let busy_retries = client.busy_retries;
            client
                .bye()
                .map_err(|e| format!("device {session}: bye: {e}"))?;
            Ok(DeviceRun {
                session,
                total_rows,
                latencies_us,
                busy_retries,
                reconnects: 0,
                replayed_rows: 0,
                recovered_rows: 0,
                resume_from: hello.resume_from,
                snapshot,
                victim: false,
            })
        }));
    }
    // Join every device and keep going on failure: a crashed device must
    // not hide the other devices' outcomes — each failure is surfaced in
    // the final summary, and the run as a whole errors at the end.
    let mut runs = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok(run)) => runs.push(run),
            Ok(Err(e)) => failures.push(e),
            Err(_) => failures.push("device thread panicked".into()),
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    for f in &failures {
        writeln!(out, "device FAILED: {f}").ok();
    }

    let sent_rows: u64 = runs
        .iter()
        .map(|r| r.total_rows.saturating_sub(r.resume_from))
        .sum();
    let busy: u64 = runs.iter().map(|r| r.busy_retries).sum();
    let mut latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies_us.clone()).collect();
    let (p50_us, p99_us) = latency_percentiles(&mut latencies);
    let samples_per_sec = if elapsed > 0.0 {
        sent_rows as f64 / elapsed
    } else {
        0.0
    };
    for r in &runs {
        if r.resume_from > 0 {
            writeln!(
                out,
                "device {}: resumed at its sample {}, replayed the remaining {}",
                r.session,
                r.resume_from,
                r.total_rows.saturating_sub(r.resume_from)
            )
            .ok();
        }
    }
    writeln!(
        out,
        "sent {sent_rows} rows in {elapsed:.3} s: {samples_per_sec:.0} samples/sec, \
         batch RTT p50 {p50_us:.1} us / p99 {p99_us:.1} us, {busy} BUSY retr(ies)",
    )
    .ok();

    // Per-group stats (healthy vs victim) for chaos runs.
    let group_stats = |victim: bool| -> Option<(u64, f64, f64, f64)> {
        let subset: Vec<&DeviceRun> = runs.iter().filter(|r| r.victim == victim).collect();
        if subset.is_empty() {
            return None;
        }
        let sent: u64 = subset
            .iter()
            .map(|r| r.total_rows.saturating_sub(r.resume_from))
            .sum();
        let mut lat: Vec<f64> = subset.iter().flat_map(|r| r.latencies_us.clone()).collect();
        let (p50, p99) = latency_percentiles(&mut lat);
        let rate = if elapsed > 0.0 {
            sent as f64 / elapsed
        } else {
            0.0
        };
        Some((sent, rate, p50, p99))
    };
    if a.chaos {
        let reconnects: u64 = runs.iter().map(|r| r.reconnects).sum();
        let replayed: u64 = runs.iter().map(|r| r.replayed_rows).sum();
        let recovered: u64 = runs.iter().map(|r| r.recovered_rows).sum();
        let (faults, conns) = chaos_proxy
            .as_ref()
            .map(|p| (p.events().len(), p.connections()))
            .unwrap_or((0, 0));
        writeln!(
            out,
            "chaos: {faults} fault(s) injected over {conns} proxied connection(s); \
             {reconnects} reconnect(s), {replayed} row(s) replayed, \
             {recovered} acked-but-unseen row(s) recovered via resume offsets"
        )
        .ok();
        for (tag, victim) in [("healthy", false), ("victim", true)] {
            if let Some((sent, _, p50, p99)) = group_stats(victim) {
                writeln!(
                    out,
                    "chaos {tag}: {sent} row(s), batch RTT p50 {p50:.1} us / p99 {p99:.1} us"
                )
                .ok();
            }
        }
    }

    if let Some(json_path) = &a.bench_json {
        let mut entries: Vec<(String, IngestEntry)> = Vec::new();
        if a.chaos {
            for (tag, victim) in [("healthy", false), ("victim", true)] {
                if let Some((sent, rate, p50, p99)) = group_stats(victim) {
                    entries.push((
                        format!("chaos_{tag}_sessions_{}_batch_{}", a.sessions, a.batch),
                        IngestEntry {
                            samples_per_sec: rate,
                            p50_us: p50,
                            p99_us: p99,
                            samples: sent,
                            unit: None,
                            scenario: None,
                        },
                    ));
                }
            }
        } else if let Some(name) = &scenario_name {
            entries.push((
                format!("scenario_{name}_sessions_{n_devices}_batch_{}", a.batch),
                IngestEntry {
                    samples_per_sec,
                    p50_us,
                    p99_us,
                    samples: sent_rows,
                    unit: None,
                    scenario: Some(name.clone()),
                },
            ));
        } else {
            entries.push((
                format!("load_sessions_{n_devices}_batch_{}", a.batch),
                IngestEntry {
                    samples_per_sec,
                    p50_us,
                    p99_us,
                    samples: sent_rows,
                    unit: None,
                    scenario: None,
                },
            ));
        }
        merge_into_file(json_path, &entries).map_err(|e| fail("writing bench JSON", e))?;
        writeln!(out, "bench results merged into {}", json_path.display()).ok();
    }

    if !failures.is_empty() {
        return Err(format!(
            "{} of {n_devices} device(s) failed; first failure: {}",
            failures.len(),
            failures[0]
        ));
    }

    if a.verify {
        let model = a.model.as_ref().ok_or("--verify requires --model")?;
        let blob = std::fs::read(model).map_err(|e| fail("reading checkpoint", e))?;
        // Replay the same stream through an in-process fleet and compare
        // checkpoint blobs byte for byte: the networked path must be
        // bit-identical to local execution.
        let device_rows: std::collections::HashMap<u64, &std::sync::Arc<Vec<Real>>> =
            devices.iter().map(|(id, rows)| (*id, rows)).collect();
        let local = FleetEngine::new(FleetConfig::new(n_devices.min(4)))
            .map_err(|e| fail("starting verification fleet", e))?;
        let mut verified = 0usize;
        let mut skipped = 0usize;
        for r in &runs {
            if r.resume_from > 0 {
                // The networked session started from durable state this
                // replay cannot reconstruct from the reference alone.
                skipped += 1;
                continue;
            }
            local
                .create_from_bytes(SessionId(r.session), &blob)
                .map_err(|e| fail("creating verification session", e))?;
        }
        for r in &runs {
            if r.resume_from > 0 {
                continue;
            }
            let Some(rows) = device_rows.get(&r.session) else {
                continue;
            };
            for row in rows.chunks_exact(dim) {
                local
                    .feed_blocking(SessionId(r.session), row)
                    .map_err(|e| fail("verification replay", e))?;
            }
        }
        for r in &runs {
            if r.resume_from > 0 {
                continue;
            }
            let local_blob = local
                .snapshot(SessionId(r.session))
                .map_err(|e| fail("verification snapshot", e))?;
            match &r.snapshot {
                Some(remote) if *remote == local_blob => verified += 1,
                Some(_) => {
                    return Err(format!(
                        "device {}: networked state DIVERGED from local replay",
                        r.session
                    ))
                }
                None => return Err("verification snapshot missing".into()),
            }
        }
        local.shutdown();
        writeln!(
            out,
            "verify: {verified} device(s) bit-identical to local replay\
             {}",
            if skipped > 0 {
                format!(" ({skipped} resumed device(s) skipped)")
            } else {
                String::new()
            }
        )
        .ok();
    }
    Ok(())
}

fn write_csv(path: &std::path::Path, samples: &[Sample], with_label: bool) -> Result<(), String> {
    let mut text = String::new();
    for s in samples {
        let row: Vec<String> = s.x.iter().map(|v| format!("{v}")).collect();
        text.push_str(&row.join(","));
        if with_label {
            text.push_str(&format!(",{}", s.label));
        }
        text.push('\n');
    }
    seqdrift_store::atomic_write(path, text.as_bytes()).map_err(|e| fail("writing CSV", e))
}

/// `seqdrift synth`: export a synthetic dataset to CSV.
pub fn synth(a: &SynthArgs, out: Out<'_>) -> Result<(), String> {
    let dataset: DriftDataset = match a.dataset.as_str() {
        "nslkdd" => {
            let mut cfg = if a.quick {
                NslKddConfig {
                    n_train: 400,
                    n_test: 4000,
                    drift_point: 1400,
                    ..NslKddConfig::default()
                }
            } else {
                NslKddConfig::default()
            };
            if let Some(seed) = a.seed {
                cfg.seed = seed;
            }
            nslkdd::generate(&cfg)
        }
        "fan-sudden" | "fan-gradual" | "fan-reoccurring" => {
            let scenario = match a.dataset.as_str() {
                "fan-sudden" => FanScenario::Sudden,
                "fan-gradual" => FanScenario::Gradual,
                _ => FanScenario::Reoccurring,
            };
            let mut cfg = FanConfig::default();
            if let Some(seed) = a.seed {
                cfg.seed = seed;
            }
            fan::generate(&cfg, scenario, fan::Environment::Silent)
        }
        other => {
            return Err(format!(
                "unknown dataset {other:?}; expected nslkdd, fan-sudden, fan-gradual or \
                 fan-reoccurring"
            ))
        }
    };
    std::fs::create_dir_all(&a.out).map_err(|e| fail("creating output dir", e))?;
    write_csv(&a.out.join("train.csv"), &dataset.train, true)?;
    write_csv(&a.out.join("test.csv"), &dataset.test, true)?;
    writeln!(
        out,
        "{}: wrote {} train + {} test samples to {} (drift at test sample {})",
        dataset.name,
        dataset.train.len(),
        dataset.test.len(),
        a.out.display(),
        dataset.drift_start
    )
    .ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Cli, Command};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("seqdrift-cli-{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes a small labelled two-blob CSV and returns its path.
    fn labelled_csv(
        dir: &std::path::Path,
        n: usize,
        mean_shift: f32,
        seed: u64,
    ) -> std::path::PathBuf {
        let mut rng = Rng::seed_from(seed);
        let mut text = String::from("f0,f1,f2,f3,class\n");
        for i in 0..n {
            let (mean, label) = if i % 2 == 0 {
                (0.2 + mean_shift, "normal")
            } else {
                (0.8 + mean_shift, "attack")
            };
            let mut x = vec![0.0 as Real; 4];
            rng.fill_normal(&mut x, mean as Real, 0.05);
            text.push_str(&format!("{},{},{},{},{label}\n", x[0], x[1], x[2], x[3]));
        }
        let path = dir.join(format!("data-{seed}.csv"));
        std::fs::write(&path, text).unwrap();
        path
    }

    /// Features-only CSV (no label column, no header).
    fn stream_csv(dir: &std::path::Path, n: usize, shift: f32, seed: u64) -> std::path::PathBuf {
        let mut rng = Rng::seed_from(seed);
        let mut text = String::new();
        for i in 0..n {
            let mean = if i % 2 == 0 { 0.2 + shift } else { 0.8 + shift };
            let mut x = vec![0.0 as Real; 4];
            rng.fill_normal(&mut x, mean as Real, 0.05);
            let row: Vec<String> = x.iter().map(|v| v.to_string()).collect();
            text.push_str(&row.join(","));
            text.push('\n');
        }
        let path = dir.join(format!("stream-{seed}.csv"));
        std::fs::write(&path, text).unwrap();
        path
    }

    fn exec(line: &str) -> Result<String, String> {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        let cli = Cli::parse(&argv).map_err(|e| e.to_string())?;
        let mut buf = Vec::new();
        crate::run(&cli, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn train_run_info_end_to_end() {
        let dir = tmpdir("e2e");
        let train_csv = labelled_csv(&dir, 200, 0.0, 1);
        let model = dir.join("model.sqdm");

        let out = exec(&format!(
            "train --csv {} --out {} --label-last --hidden 6 --window 20",
            train_csv.display(),
            model.display()
        ))
        .unwrap();
        assert!(out.contains("calibrated"), "{out}");
        assert!(model.exists());

        // Stable stream: no drift.
        let stable = stream_csv(&dir, 150, 0.0, 2);
        let updated = dir.join("updated.sqdm");
        let out = exec(&format!(
            "run --csv {} --model {} --out {} --no-header",
            stable.display(),
            model.display(),
            updated.display()
        ))
        .unwrap();
        assert!(out.contains("0 drift(s)"), "{out}");
        assert!(updated.exists());

        // Shifted stream through the *updated* checkpoint: drift detected.
        let shifted = stream_csv(&dir, 900, 0.3, 3);
        let events = dir.join("events.csv");
        let out = exec(&format!(
            "run --csv {} --model {} --events {} --no-header",
            shifted.display(),
            updated.display(),
            events.display()
        ))
        .unwrap();
        assert!(out.contains("DRIFT detected"), "{out}");
        let events_text = std::fs::read_to_string(&events).unwrap();
        assert!(events_text.contains("drift,"), "{events_text}");

        // Info on the original checkpoint.
        let out = exec(&format!("info --model {}", model.display())).unwrap();
        assert!(out.contains("2 classes x 4 features"), "{out}");
        assert!(out.contains("window = 20"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_staggers_drift_across_devices() {
        let dir = tmpdir("fleet");
        let train_csv = labelled_csv(&dir, 200, 0.0, 11);
        let model = dir.join("model.sqdm");
        exec(&format!(
            "train --csv {} --out {} --label-last --hidden 6 --window 20",
            train_csv.display(),
            model.display()
        ))
        .unwrap();

        // Clean replay: no injected drift, no detections.
        let stream = stream_csv(&dir, 120, 0.0, 12);
        let out = exec(&format!(
            "fleet --csv {} --model {} --sessions 6 --workers 2 --no-header",
            stream.display(),
            model.display()
        ))
        .unwrap();
        assert!(out.contains("6 sessions over 2 workers"), "{out}");
        assert!(out.contains("0 drift(s)"), "{out}");
        assert!(out.contains("720 samples processed"), "{out}");

        // Injected drift: every device detects, onsets staggered.
        let long = stream_csv(&dir, 600, 0.0, 13);
        let out = exec(&format!(
            "fleet --csv {} --model {} --sessions 4 --workers 2 \
             --drift-at 100 --drift-step 50 --drift-shift 0.4 --no-header",
            long.display(),
            model.display()
        ))
        .unwrap();
        assert!(out.contains("4 drift(s)"), "{out}");
        for d in 0..4 {
            assert!(out.contains(&format!("device {d}: DRIFT")), "{out}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn federate_with_fault_injection_replays_identically() {
        let dir = tmpdir("fleet-fed-faults");
        let train_csv = labelled_csv(&dir, 200, 0.0, 41);
        let model = dir.join("model.sqdm");
        exec(&format!(
            "train --csv {} --out {} --label-last --hidden 6 --window 20",
            train_csv.display(),
            model.display()
        ))
        .unwrap();
        let stream = stream_csv(&dir, 400, 0.0, 42);
        // Drift makes sessions contribute, faults make sessions fail, and
        // federation rounds interleave with both. Round boundaries come
        // from the feeder-side counter, so the same seed must replay the
        // same rounds against the same models — the whole run is
        // line-for-line reproducible (only event interleaving may vary).
        let line = format!(
            "fleet --csv {} --model {} --sessions 6 --workers 3 --no-header \
             --drift-at 60 --drift-step 20 --drift-shift 0.4 \
             --inject-faults 7 --federate --federate-interval 300",
            stream.display(),
            model.display()
        );
        let sorted = |out: &str| {
            let mut lines: Vec<&str> = out.lines().collect();
            lines.sort_unstable();
            lines.join("\n")
        };
        let first = exec(&line).unwrap();
        let second = exec(&line).unwrap();
        assert!(first.contains("federation:"), "{first}");
        assert!(first.contains("fault plan (seed 7):"), "{first}");
        assert_eq!(
            sorted(&first),
            sorted(&second),
            "a seeded --federate --inject-faults replay must be deterministic"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_poison_flag_reports_the_plan_and_survives_the_attack() {
        let dir = tmpdir("fleet-poison");
        let train_csv = labelled_csv(&dir, 200, 0.0, 51);
        let model = dir.join("model.sqdm");
        exec(&format!(
            "train --csv {} --out {} --label-last --hidden 6 --window 20",
            train_csv.display(),
            model.display()
        ))
        .unwrap();
        let stream = stream_csv(&dir, 300, 0.0, 52);
        let out = exec(&format!(
            "fleet --csv {} --model {} --sessions 8 --workers 2 --no-header \
             --drift-at 50 --drift-step 10 --drift-shift 0.4 \
             --federate --federate-interval 400 --poison 99",
            stream.display(),
            model.display()
        ))
        .unwrap();
        assert!(out.contains("poison plan (seed 99):"), "{out}");
        assert!(out.contains("session "), "{out}");
        assert!(out.contains("federation:"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_state_dir_persists_and_resumes_sessions() {
        let dir = tmpdir("fleet-durable");
        let train_csv = labelled_csv(&dir, 200, 0.0, 31);
        let model = dir.join("model.sqdm");
        exec(&format!(
            "train --csv {} --out {} --label-last --hidden 6 --window 20",
            train_csv.display(),
            model.display()
        ))
        .unwrap();
        let stream = stream_csv(&dir, 120, 0.0, 32);
        let state = dir.join("state");

        // First run populates the store (and reports the flushes).
        let out = exec(&format!(
            "fleet --csv {} --model {} --sessions 4 --workers 2 --no-header --state-dir {}",
            stream.display(),
            model.display(),
            state.display()
        ))
        .unwrap();
        assert!(out.contains("durable state store:"), "{out}");
        assert!(!out.contains("durability: 0 checkpoint flush(es)"), "{out}");
        assert!(out.contains("flush failure(s)"), "{out}");

        // Second run resumes every device instead of re-creating it.
        let out = exec(&format!(
            "fleet --csv {} --model {} --sessions 4 --workers 2 --no-header \
             --state-dir {} --resume",
            stream.display(),
            model.display(),
            state.display()
        ))
        .unwrap();
        for d in 0..4 {
            assert!(
                out.contains(&format!("resumed device {d} at its sample")),
                "{out}"
            );
        }
        assert!(out.contains("4 sessions over 2 workers"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn guard_flags_reject_and_repair_hostile_streams() {
        let dir = tmpdir("guard");
        let train_csv = labelled_csv(&dir, 200, 0.0, 21);
        let model = dir.join("model.sqdm");
        let out = exec(&format!(
            "train --csv {} --out {} --label-last --hidden 6 --window 20 --stuck-threshold 4",
            train_csv.display(),
            model.display()
        ))
        .unwrap();
        assert!(
            out.contains("guard: policy reject, stuck threshold 4"),
            "{out}"
        );

        // Hostile stream the CSV loader admits (all finite): oversized rows
        // plus a stuck-sensor run longer than the threshold.
        let clean = |i: usize| {
            if i.is_multiple_of(2) {
                "0.2,0.21,0.19,0.2\n"
            } else {
                "0.8,0.79,0.81,0.8\n"
            }
        };
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(clean(i));
        }
        text.push_str("1e30,1e30,1e30,1e30\n2e30,2e30,2e30,2e30\n3e30,3e30,3e30,3e30\n");
        for _ in 0..6 {
            text.push_str("9,9,9,9\n");
        }
        for i in 0..20 {
            text.push_str(clean(i));
        }
        let hostile = dir.join("hostile.csv");
        std::fs::write(&hostile, &text).unwrap();

        // Default policy (reject): 3 oversized + 2 over-threshold stuck rows
        // are dropped, the stream keeps going, and the run still succeeds.
        let events = dir.join("events.csv");
        let out = exec(&format!(
            "run --csv {} --model {} --events {} --no-header",
            hostile.display(),
            model.display(),
            events.display()
        ))
        .unwrap();
        assert!(out.contains("rejected by guard"), "{out}");
        assert!(
            out.contains("guard: 5 sample(s) rejected, 0 repaired"),
            "{out}"
        );
        let events_text = std::fs::read_to_string(&events).unwrap();
        assert!(events_text.contains("degraded,"), "{events_text}");
        assert!(events_text.contains("recovered,"), "{events_text}");

        // Clamp override: oversized rows are repaired in place; only the
        // stuck run is still dropped.
        let out = exec(&format!(
            "run --csv {} --model {} --guard-policy clamp --no-header",
            hostile.display(),
            model.display()
        ))
        .unwrap();
        assert!(out.contains("guard override: policy clamp"), "{out}");
        assert!(
            out.contains("guard: 2 sample(s) rejected, 3 repaired"),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_rejects_dimension_mismatch() {
        let dir = tmpdir("dims");
        let train_csv = labelled_csv(&dir, 100, 0.0, 4);
        let model = dir.join("model.sqdm");
        exec(&format!(
            "train --csv {} --out {} --label-last --hidden 4 --window 10",
            train_csv.display(),
            model.display()
        ))
        .unwrap();
        // 3-column stream against a 4-feature model.
        let bad = dir.join("bad.csv");
        std::fs::write(&bad, "1,2,3\n4,5,6\n").unwrap();
        let err = exec(&format!(
            "run --csv {} --model {} --no-header",
            bad.display(),
            model.display()
        ))
        .unwrap_err();
        assert!(err.contains("expects 4"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synth_exports_datasets() {
        let dir = tmpdir("synth");
        let out = exec(&format!(
            "synth --dataset fan-sudden --out {}",
            dir.display()
        ))
        .unwrap();
        assert!(out.contains("drift at test sample 120"), "{out}");
        let test_csv = std::fs::read_to_string(dir.join("test.csv")).unwrap();
        assert_eq!(test_csv.lines().count(), 700);
        // 511 features + label column.
        assert_eq!(test_csv.lines().next().unwrap().split(',').count(), 512);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synth_rejects_unknown_dataset() {
        let dir = tmpdir("synth-bad");
        let err = exec(&format!("synth --dataset mnist --out {}", dir.display())).unwrap_err();
        assert!(err.contains("unknown dataset"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_load_round_trip_with_verify() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let dir = tmpdir("serve-load");
        let train_csv = labelled_csv(&dir, 200, 0.0, 41);
        let model = dir.join("model.sqdm");
        exec(&format!(
            "train --csv {} --out {} --label-last --hidden 6 --window 20",
            train_csv.display(),
            model.display()
        ))
        .unwrap();
        let stream = stream_csv(&dir, 60, 0.0, 42);
        let port_file = dir.join("port.txt");
        let bench_json = dir.join("BENCH_ingest.json");

        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let stop = Arc::clone(&stop);
            let args = Cli::parse(&argv_vec(&format!(
                "serve --model {} --listen 127.0.0.1:0 --workers 2 --port-file {}",
                model.display(),
                port_file.display()
            )))
            .unwrap();
            std::thread::spawn(move || {
                let Command::Serve(a) = args.command else {
                    panic!("not serve")
                };
                let mut buf = Vec::new();
                let r = serve_with_stop(&a, &mut buf, &stop);
                (r, String::from_utf8(buf).unwrap())
            })
        };
        let addr = wait_for_port_file(&port_file);

        let out = exec(&format!(
            "load --csv {} --addr {addr} --sessions 3 --batch 8 --no-header \
             --bench-json {} --verify --model {}",
            stream.display(),
            bench_json.display(),
            model.display()
        ))
        .unwrap();
        assert!(out.contains("sent 180 rows"), "{out}");
        assert!(
            out.contains("verify: 3 device(s) bit-identical to local replay"),
            "{out}"
        );
        let json = std::fs::read_to_string(&bench_json).unwrap();
        assert!(json.contains("load_sessions_3_batch_8"), "{json}");

        stop.store(true, Ordering::Relaxed);
        let (result, served) = server.join().unwrap();
        result.unwrap();
        assert!(served.contains("listening on"), "{served}");
        assert!(served.contains("180 sample(s) processed"), "{served}");
        assert!(served.contains("drained; bye"), "{served}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_scenario_is_deterministic() {
        let dir = tmpdir("fleet-scn");
        let sqsc = dir.join("drill.sqsc");
        std::fs::write(
            &sqsc,
            "sqsc 1\nname drill\nkind synthetic\nseed 9\nsessions 3\ndim 4\nclasses 2\n\
             train 40\nsamples 160\nnoise 0.05\ndrift sudden start 80 magnitude 0.8\n\
             stagger 10\n",
        )
        .unwrap();
        let line = format!("fleet --scenario {} --workers 2", sqsc.display());
        let sorted = |out: &str| {
            let mut lines: Vec<&str> = out.lines().collect();
            lines.sort_unstable();
            lines.join("\n")
        };
        let first = exec(&line).unwrap();
        let second = exec(&line).unwrap();
        assert!(
            first.contains("scenario 'drill': 3 session(s) over 2 workers, 480 total samples"),
            "{first}"
        );
        assert!(first.contains("480 samples processed"), "{first}");
        assert_eq!(
            sorted(&first),
            sorted(&second),
            "same .sqsc must replay identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_records_a_replayable_bundle() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let dir = tmpdir("serve-record");
        let train_csv = labelled_csv(&dir, 200, 0.0, 61);
        let model = dir.join("model.sqdm");
        exec(&format!(
            "train --csv {} --out {} --label-last --hidden 6 --window 20",
            train_csv.display(),
            model.display()
        ))
        .unwrap();
        let stream = stream_csv(&dir, 60, 0.0, 62);
        let port_file = dir.join("port.txt");
        let rec_dir = dir.join("incident-7");

        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let stop = Arc::clone(&stop);
            let args = Cli::parse(&argv_vec(&format!(
                "serve --model {} --listen 127.0.0.1:0 --workers 2 --port-file {} --record {}",
                model.display(),
                port_file.display(),
                rec_dir.display()
            )))
            .unwrap();
            std::thread::spawn(move || {
                let Command::Serve(a) = args.command else {
                    panic!("not serve")
                };
                let mut buf = Vec::new();
                let r = serve_with_stop(&a, &mut buf, &stop);
                (r, String::from_utf8(buf).unwrap())
            })
        };
        let addr = wait_for_port_file(&port_file);
        exec(&format!(
            "load --csv {} --addr {addr} --sessions 2 --batch 8 --no-header",
            stream.display()
        ))
        .unwrap();
        stop.store(true, Ordering::Relaxed);
        let (result, served) = server.join().unwrap();
        result.unwrap();
        assert!(served.contains("recorded scenario bundle:"), "{served}");

        // The bundle replays through the scenario fleet path: the
        // recorded reference model is embedded, so no --model is needed.
        let manifest = rec_dir.join("scenario.sqsc");
        assert!(manifest.exists(), "bundle manifest missing");
        let out = exec(&format!("fleet --scenario {}", manifest.display())).unwrap();
        assert!(out.contains("scenario 'incident-7': 2 session(s)"), "{out}");
        assert!(out.contains("120 samples processed"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn argv_vec(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn wait_for_port_file(path: &std::path::Path) -> String {
        for _ in 0..400 {
            if let Ok(addr) = std::fs::read_to_string(path) {
                if !addr.is_empty() {
                    return addr;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("server never wrote {}", path.display());
    }

    #[test]
    fn train_rejects_missing_file() {
        let err =
            exec("train --csv /nonexistent/x.csv --out /tmp/m.sqdm --label-last").unwrap_err();
        assert!(err.contains("reading training CSV"), "{err}");
    }
}
