#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # seqdrift-cli
//!
//! The `seqdrift` command-line tool: the adoption path for users who have
//! data in CSV files and want drift detection without writing Rust.
//!
//! ```text
//! seqdrift train --csv train.csv --label-last --window 100 --out model.sqdm
//! seqdrift run   --csv stream.csv --model model.sqdm --out updated.sqdm
//! seqdrift info  --model model.sqdm
//! seqdrift synth --dataset fan-sudden --out data/
//! seqdrift fleet --csv stream.csv --model model.sqdm --sessions 32 --drift-at 100
//! seqdrift serve --model model.sqdm --listen 127.0.0.1:4747 --state-dir state/
//! seqdrift load  --csv stream.csv --addr 127.0.0.1:4747 --sessions 8 --verify --model model.sqdm
//! ```
//!
//! * `train` — calibrate a full [`seqdrift_core::DriftPipeline`] from a
//!   labelled CSV (features + final label column) and checkpoint it;
//! * `run` — stream an unlabelled CSV through a checkpointed pipeline,
//!   reporting drift detections and reconstructions, optionally writing
//!   the adapted checkpoint back out;
//! * `info` — describe a checkpoint (shapes, thresholds, counters);
//! * `synth` — export the paper's synthetic datasets to CSV for
//!   inspection or replay;
//! * `fleet` — replay one CSV across many simulated devices, each an
//!   independent [`seqdrift_fleet::FleetEngine`] session restored from the
//!   same checkpoint, with per-device staggered drift injection. With
//!   `--state-dir` every rolling checkpoint is flushed to a crash-safe
//!   on-disk store, and `--resume` re-homes the surviving sessions (and
//!   re-applies persisted quarantine verdicts) after a crash;
//! * `serve` — run the [`seqdrift_server`] TCP ingest server: real
//!   devices connect over the `SQNP` wire protocol and stream into one
//!   fleet engine. Ctrl-C drains gracefully, flushing every session's
//!   final state to `--state-dir`;
//! * `load` — multi-threaded load generator: replay a CSV from N
//!   simulated devices against a running server, report samples/sec and
//!   batch round-trip percentiles (optionally merged into a machine-
//!   readable `BENCH_ingest.json`), and `--verify` that the networked
//!   state is bit-identical to a local replay.
//!
//! The argument parser and command implementations live here in the
//! library so they are unit-testable; `main.rs` is a thin shim.

pub mod args;
pub mod commands;

pub use args::{Cli, Command, ParseError};

/// Runs a parsed command, writing human-readable progress to `out`.
pub fn run(cli: &Cli, out: &mut dyn std::io::Write) -> Result<(), String> {
    match &cli.command {
        Command::Train(a) => commands::train(a, out),
        Command::Run(a) => commands::run_stream(a, out),
        Command::Info(a) => commands::info(a, out),
        Command::Synth(a) => commands::synth(a, out),
        Command::Fleet(a) => commands::fleet(a, out),
        Command::Serve(a) => commands::serve(a, out),
        Command::Load(a) => commands::load(a, out),
    }
}
