#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # seqdrift-cli
//!
//! The `seqdrift` command-line tool: the adoption path for users who have
//! data in CSV files and want drift detection without writing Rust.
//!
//! ```text
//! seqdrift train --csv train.csv --label-last --window 100 --out model.sqdm
//! seqdrift run   --csv stream.csv --model model.sqdm --out updated.sqdm
//! seqdrift info  --model model.sqdm
//! seqdrift synth --dataset fan-sudden --out data/
//! seqdrift fleet --csv stream.csv --model model.sqdm --sessions 32 --drift-at 100
//! ```
//!
//! * `train` — calibrate a full [`seqdrift_core::DriftPipeline`] from a
//!   labelled CSV (features + final label column) and checkpoint it;
//! * `run` — stream an unlabelled CSV through a checkpointed pipeline,
//!   reporting drift detections and reconstructions, optionally writing
//!   the adapted checkpoint back out;
//! * `info` — describe a checkpoint (shapes, thresholds, counters);
//! * `synth` — export the paper's synthetic datasets to CSV for
//!   inspection or replay;
//! * `fleet` — replay one CSV across many simulated devices, each an
//!   independent [`seqdrift_fleet::FleetEngine`] session restored from the
//!   same checkpoint, with per-device staggered drift injection. With
//!   `--state-dir` every rolling checkpoint is flushed to a crash-safe
//!   on-disk store, and `--resume` re-homes the surviving sessions (and
//!   re-applies persisted quarantine verdicts) after a crash.
//!
//! The argument parser and command implementations live here in the
//! library so they are unit-testable; `main.rs` is a thin shim.

pub mod args;
pub mod commands;

pub use args::{Cli, Command, ParseError};

/// Runs a parsed command, writing human-readable progress to `out`.
pub fn run(cli: &Cli, out: &mut dyn std::io::Write) -> Result<(), String> {
    match &cli.command {
        Command::Train(a) => commands::train(a, out),
        Command::Run(a) => commands::run_stream(a, out),
        Command::Info(a) => commands::info(a, out),
        Command::Synth(a) => commands::synth(a, out),
        Command::Fleet(a) => commands::fleet(a, out),
    }
}
