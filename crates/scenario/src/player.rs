//! Deterministic scenario playback.
//!
//! Every synthetic stream is a pure function of `(scenario, session id)`:
//! the player derives one RNG per purpose (concepts, training split, each
//! session stream) via a splitmix64 mix of the master seed, so the produced
//! vectors are bit-identical regardless of worker count, feed interleaving,
//! or which consumer (eval / fleet / load) asks for them.

use std::path::{Path, PathBuf};

use seqdrift_datasets::synth::ClassConcept;
use seqdrift_datasets::{DriftDataset, DriftSchedule, Sample};
use seqdrift_linalg::{Real, Rng};

use crate::model::*;
use crate::{Result, ScenarioError};

/// Domain-separation tags for derived seeds.
const TAG_CONCEPTS: u64 = 0x5351_5343_0001;
const TAG_TRAIN: u64 = 0x5351_5343_0002;
const TAG_SESSION: u64 = 0x5351_5343_0003;

/// splitmix64 finalizer: decorrelates derived seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn derive(seed: u64, tag: u64, salt: u64) -> u64 {
    mix(seed ^ mix(tag ^ mix(salt)))
}

/// Rows loaded from a recorded bundle.
struct RecordedData {
    reference: Option<Vec<u8>>,
    /// `(session id, flattened rows)` in manifest order.
    streams: Vec<(u64, Vec<Vec<Real>>)>,
}

/// Plays a scenario back as per-session sample streams.
pub struct ScenarioPlayer {
    scenario: Scenario,
    recorded: Option<RecordedData>,
}

impl ScenarioPlayer {
    /// Loads a scenario file and, for recorded scenarios, its data bundle
    /// (paths resolved relative to the file's directory).
    pub fn from_file(path: &Path) -> Result<ScenarioPlayer> {
        let scenario = Scenario::load(path)?;
        let base = path.parent().map(Path::to_path_buf);
        ScenarioPlayer::new(scenario, base.as_deref())
    }

    /// Wraps an already-parsed scenario. `base` is the directory recorded
    /// bundle files are resolved against; synthetic scenarios ignore it.
    pub fn new(scenario: Scenario, base: Option<&Path>) -> Result<ScenarioPlayer> {
        let recorded = match &scenario.body {
            ScenarioBody::Synthetic(_) => None,
            ScenarioBody::Recorded(spec) => {
                let base = base.ok_or_else(|| {
                    ScenarioError::Invalid(
                        "recorded scenario needs a base directory for its data files".into(),
                    )
                })?;
                Some(load_bundle(spec, base)?)
            }
        };
        Ok(ScenarioPlayer { scenario, recorded })
    }

    /// The scenario being played.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.scenario.name
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        match &self.scenario.body {
            ScenarioBody::Synthetic(s) => s.dim,
            ScenarioBody::Recorded(r) => r.dim,
        }
    }

    /// Session ids, in playback order.
    pub fn sessions(&self) -> Vec<u64> {
        match &self.scenario.body {
            ScenarioBody::Synthetic(s) => (0..s.sessions as u64).collect(),
            ScenarioBody::Recorded(r) => r.sessions.iter().map(|s| s.id).collect(),
        }
    }

    /// Reference model blob of a recorded bundle (`None` for synthetic
    /// scenarios or bundles recorded without one).
    pub fn reference_model(&self) -> Option<&[u8]> {
        self.recorded.as_ref().and_then(|r| r.reference.as_deref())
    }

    /// Per-session drift schedule (synthetic only): session `s` is staggered
    /// `s * stagger` samples after session 0.
    pub fn schedule_for(&self, session: u64) -> Result<DriftSchedule> {
        let s = self.scenario.synthetic()?;
        let off = session as usize * s.stagger;
        Ok(match s.drift.kind {
            DriftKind::Sudden => DriftSchedule::sudden(s.drift.start + off),
            DriftKind::Gradual => DriftSchedule::gradual(s.drift.start + off, s.drift.end + off),
            DriftKind::Incremental => {
                DriftSchedule::incremental(s.drift.start + off, s.drift.end + off)
            }
            DriftKind::Reoccurring => {
                DriftSchedule::reoccurring(s.drift.start + off, s.drift.end + off)
            }
        })
    }

    /// Old/new concept pairs, one per class (synthetic only).
    fn concepts(&self) -> Result<Vec<(ClassConcept, ClassConcept)>> {
        let s = self.scenario.synthetic()?;
        let mut rng = Rng::seed_from(derive(s.seed, TAG_CONCEPTS, 0));
        let all_dims: Vec<usize> = (0..s.dim).collect();
        Ok((0..s.classes)
            .map(|_| {
                let old = ClassConcept::random_pattern(s.dim, 0.2, 0.8, s.noise, &mut rng);
                let new = old.shifted(&all_dims, s.drift.magnitude);
                (old, new)
            })
            .collect())
    }

    /// Labelled training pairs drawn from the old concepts (synthetic only),
    /// grouped class-major: all of class 0, then class 1, ...
    pub fn train_pairs(&self) -> Result<Vec<(usize, Vec<Real>)>> {
        let s = self.scenario.synthetic()?;
        let concepts = self.concepts()?;
        let mut rng = Rng::seed_from(derive(s.seed, TAG_TRAIN, 0));
        let mut out = Vec::with_capacity(s.classes * s.train);
        for (label, (old, _)) in concepts.iter().enumerate() {
            for _ in 0..s.train {
                out.push((label, old.sample(&mut rng)));
            }
        }
        Ok(out)
    }

    /// Stream length for a session under the traffic mix.
    pub fn stream_len(&self, session: u64) -> usize {
        match &self.scenario.body {
            ScenarioBody::Synthetic(s) => {
                if (session as usize) < s.traffic.hot {
                    s.samples
                } else {
                    s.traffic.idle
                }
            }
            ScenarioBody::Recorded(r) => r
                .sessions
                .iter()
                .find(|x| x.id == session)
                .map(|x| x.rows)
                .unwrap_or(0),
        }
    }

    /// The labelled stream for a session (synthetic only — recorded bundles
    /// carry no ground-truth labels).
    pub fn labeled_stream(&self, session: u64) -> Result<Vec<Sample>> {
        let s = self.scenario.synthetic()?;
        if session as usize >= s.sessions {
            return Err(ScenarioError::Invalid(format!(
                "session {session} out of range (scenario has {})",
                s.sessions
            )));
        }
        let concepts = self.concepts()?;
        let schedule = self.schedule_for(session)?;
        let n = self.stream_len(session);
        let mut rng = Rng::seed_from(derive(s.seed, TAG_SESSION, session.wrapping_add(1)));
        let mut out = Vec::with_capacity(n);
        for t in 0..n {
            let label = rng.below(s.classes as u64) as usize;
            let (old, new) = &concepts[label];
            let (use_new, morph) = schedule.resolve(t, &mut rng);
            let x = match morph {
                Some(m) => ClassConcept::lerp(old, new, m).sample(&mut rng),
                None if use_new => new.sample(&mut rng),
                None => old.sample(&mut rng),
            };
            out.push(Sample::new(x, label));
        }
        Ok(out)
    }

    /// The feature-only stream for a session. For synthetic scenarios this
    /// is the labelled stream with labels dropped (bit-identical features);
    /// for recorded scenarios, the replayed rows.
    pub fn stream(&self, session: u64) -> Result<Vec<Vec<Real>>> {
        match &self.scenario.body {
            ScenarioBody::Synthetic(_) => Ok(self
                .labeled_stream(session)?
                .into_iter()
                .map(|s| s.x)
                .collect()),
            ScenarioBody::Recorded(_) => {
                let rec = self.recorded.as_ref().ok_or_else(|| {
                    ScenarioError::Invalid("recorded scenario loaded without bundle".into())
                })?;
                rec.streams
                    .iter()
                    .find(|(id, _)| *id == session)
                    .map(|(_, rows)| rows.clone())
                    .ok_or_else(|| {
                        ScenarioError::Invalid(format!("session {session} not in recorded bundle"))
                    })
            }
        }
    }

    /// Builds an eval-ready [`DriftDataset`] for one session (synthetic
    /// only): training split from the old concepts, test stream following
    /// the session's staggered schedule.
    pub fn dataset(&self, session: u64) -> Result<DriftDataset> {
        let s = self.scenario.synthetic()?;
        let schedule = self.schedule_for(session)?;
        let test = self.labeled_stream(session)?;
        if test.is_empty() {
            return Err(ScenarioError::Invalid(format!(
                "session {session} has an empty stream (idle traffic); no dataset to build"
            )));
        }
        let train = self
            .train_pairs()?
            .into_iter()
            .map(|(label, x)| Sample::new(x, label))
            .collect();
        Ok(DriftDataset {
            name: format!("{}-s{session}", self.scenario.name),
            train,
            test,
            drift_start: schedule.start,
            drift_end: (schedule.end > schedule.start).then_some(schedule.end),
            classes: s.classes,
        })
    }
}

/// Parses one bundle CSV row file: `rows` lines of `dim` comma-separated
/// floats (no header). Floats are written with Rust's shortest round-trip
/// formatting, so replay reproduces the recorded bits exactly.
fn parse_rows(text: &str, dim: usize, file: &str) -> Result<Vec<Vec<Real>>> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut row = Vec::with_capacity(dim);
        for tok in line.split(',') {
            let v: Real = tok.trim().parse().map_err(|_| {
                ScenarioError::Invalid(format!("{file}:{}: '{tok}' is not a number", i + 1))
            })?;
            row.push(v);
        }
        if row.len() != dim {
            return Err(ScenarioError::Invalid(format!(
                "{file}:{}: expected {dim} values, found {}",
                i + 1,
                row.len()
            )));
        }
        out.push(row);
    }
    Ok(out)
}

fn load_bundle(spec: &RecordedSpec, base: &Path) -> Result<RecordedData> {
    let resolve = |rel: &str| -> PathBuf { base.join(rel) };
    let reference = match &spec.reference {
        Some(rel) => {
            let p = resolve(rel);
            Some(
                std::fs::read(&p)
                    .map_err(|e| ScenarioError::Io(format!("{}: {e}", p.display())))?,
            )
        }
        None => None,
    };
    let mut streams = Vec::with_capacity(spec.sessions.len());
    for sess in &spec.sessions {
        let p = resolve(&sess.file);
        let text = std::fs::read_to_string(&p)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", p.display())))?;
        let rows = parse_rows(&text, spec.dim, &sess.file)?;
        if rows.len() != sess.rows {
            return Err(ScenarioError::Invalid(format!(
                "{}: manifest says {} rows, file has {}",
                sess.file,
                sess.rows,
                rows.len()
            )));
        }
        streams.push((sess.id, rows));
    }
    Ok(RecordedData { reference, streams })
}
