//! Recorded ingest bundles: accumulate live per-session rows + connection
//! events, then write a replayable `.sqsc` + data bundle.
//!
//! The writer emits:
//!
//! * `scenario.sqsc` — a `kind recorded` manifest,
//! * `reference.sqdm` — the reference model blob sessions were created from,
//! * `session_<id>.csv` — one file per session, rows in applied order,
//!   floats in Rust's shortest round-trip formatting (replay is bit-exact),
//! * `ingest.log` — timing + connection events (informational).
//!
//! All files are written via `seqdrift_store::atomic_write` so a crashed
//! recorder never leaves a half-written bundle entry.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use seqdrift_linalg::Real;

use crate::model::{RecordedSession, RecordedSpec, Scenario, ScenarioBody};
use crate::{Result, ScenarioError};

/// One timestamped ingest event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordEvent {
    /// Microseconds since the recording started.
    pub t_us: u64,
    /// Wire session id.
    pub session: u64,
    /// Event kind: `hello`, `samples`, `bye`, `disconnect`, ...
    pub kind: String,
    /// Rows involved (for `samples`; zero otherwise).
    pub rows: usize,
}

/// An in-memory recording being accumulated from a live tap.
#[derive(Debug, Clone)]
pub struct Recording {
    name: String,
    dim: usize,
    reference: Option<Vec<u8>>,
    /// Applied rows per session, flattened, in applied order.
    rows: BTreeMap<u64, Vec<Real>>,
    events: Vec<RecordEvent>,
}

impl Recording {
    /// Starts an empty recording. `dim` may be zero until the first rows
    /// arrive (set via [`Recording::set_dim`]).
    pub fn new(name: impl Into<String>) -> Recording {
        Recording {
            name: sanitize_name(&name.into()),
            dim: 0,
            reference: None,
            rows: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Sets the feature dimensionality (first writer wins).
    pub fn set_dim(&mut self, dim: usize) {
        if self.dim == 0 {
            self.dim = dim;
        }
    }

    /// Attaches the reference model blob sessions are created from.
    pub fn set_reference(&mut self, blob: Vec<u8>) {
        if self.reference.is_none() {
            self.reference = Some(blob);
        }
    }

    /// Appends applied rows (flattened, length a multiple of `dim`) for a
    /// session.
    pub fn push_rows(&mut self, session: u64, rows: &[Real]) {
        self.rows
            .entry(session)
            .or_default()
            .extend_from_slice(rows);
    }

    /// Appends a timestamped event to the ingest log.
    pub fn push_event(&mut self, t_us: u64, session: u64, kind: impl Into<String>, rows: usize) {
        self.events.push(RecordEvent {
            t_us,
            session,
            kind: kind.into(),
            rows,
        });
    }

    /// Total applied rows across all sessions.
    pub fn total_rows(&self) -> usize {
        if self.dim == 0 {
            return 0;
        }
        self.rows.values().map(|v| v.len() / self.dim).sum()
    }

    /// Sessions that have applied rows.
    pub fn session_count(&self) -> usize {
        self.rows.values().filter(|v| !v.is_empty()).count()
    }

    /// Writes the bundle into `dir` (created if missing) and returns the
    /// path of the `.sqsc` manifest. Fails if no rows were recorded or the
    /// dimensionality was never set.
    pub fn write_bundle(&self, dir: &Path) -> Result<PathBuf> {
        if self.dim == 0 || self.rows.values().all(|v| v.is_empty()) {
            return Err(ScenarioError::Invalid(
                "nothing recorded: no session rows were applied".into(),
            ));
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", dir.display())))?;

        let write = |rel: &str, bytes: &[u8]| -> Result<()> {
            let p = dir.join(rel);
            seqdrift_store::atomic_write(&p, bytes)
                .map_err(|e| ScenarioError::Io(format!("{}: {e}", p.display())))
        };

        let reference = match &self.reference {
            Some(blob) => {
                write("reference.sqdm", blob)?;
                Some("reference.sqdm".to_string())
            }
            None => None,
        };

        let log = if self.events.is_empty() {
            None
        } else {
            let mut text = String::from("t_us,session,event,rows\n");
            for e in &self.events {
                text.push_str(&format!("{},{},{},{}\n", e.t_us, e.session, e.kind, e.rows));
            }
            write("ingest.log", text.as_bytes())?;
            Some("ingest.log".to_string())
        };

        let mut sessions = Vec::new();
        for (&id, flat) in &self.rows {
            if flat.is_empty() {
                continue;
            }
            let rows = flat.len() / self.dim;
            let file = format!("session_{id}.csv");
            let mut text = String::new();
            for row in flat.chunks_exact(self.dim) {
                let mut first = true;
                for v in row {
                    if !first {
                        text.push(',');
                    }
                    first = false;
                    text.push_str(&format!("{v}"));
                }
                text.push('\n');
            }
            write(&file, text.as_bytes())?;
            sessions.push(RecordedSession { id, rows, file });
        }

        let scenario = Scenario {
            name: self.name.clone(),
            body: ScenarioBody::Recorded(RecordedSpec {
                dim: self.dim,
                reference,
                log,
                sessions,
            }),
        };
        let manifest = dir.join("scenario.sqsc");
        seqdrift_store::atomic_write(&manifest, scenario.render().as_bytes())
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", manifest.display())))?;
        Ok(manifest)
    }
}

/// Scenario names are single tokens; replace anything else so recorded
/// names always parse back.
fn sanitize_name(raw: &str) -> String {
    let cleaned: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "recorded".to_string()
    } else {
        cleaned
    }
}
