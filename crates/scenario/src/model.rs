//! Scenario data model and canonical serializer.

use seqdrift_linalg::Real;

use crate::{Result, ScenarioError};

/// The only `.sqsc` format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// A parsed scenario: a name plus either a synthetic recipe or a recorded
/// bundle manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name; used for bench-entry attribution and derived dataset
    /// names. Single token (no whitespace).
    pub name: String,
    /// Kind-specific payload.
    pub body: ScenarioBody,
}

/// Synthetic recipe or recorded-bundle manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioBody {
    /// Streams synthesized deterministically from a seed.
    Synthetic(SynthSpec),
    /// Streams replayed from files captured off a live server.
    Recorded(RecordedSpec),
}

/// Deterministic synthesis recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Number of sessions (ids `0..sessions`).
    pub sessions: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of class labels.
    pub classes: usize,
    /// Training samples per class (drawn from the old concepts).
    pub train: usize,
    /// Stream length for each *hot* session.
    pub samples: usize,
    /// Concept noise (per-dimension standard deviation).
    pub noise: Real,
    /// Drift shape, schedule, and magnitude.
    pub drift: DriftSpec,
    /// Per-session onset offset: session `s` drifts `s * stagger` samples
    /// later than session 0.
    pub stagger: usize,
    /// Hot/idle traffic mix.
    pub traffic: TrafficSpec,
    /// Input guard policy the consumer should apply (optional).
    pub guard: Option<GuardSpec>,
    /// Fault-injection seeds (optional per family).
    pub faults: FaultsSpec,
    /// Federation round interval in samples (optional).
    pub federate: Option<u64>,
}

/// Drift shape × schedule × magnitude.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSpec {
    /// Drift shape (Figure 1 of the paper).
    pub kind: DriftKind,
    /// First affected sample index (before per-session stagger).
    pub start: usize,
    /// End of the transition (exclusive). Equal to `start` for sudden.
    pub end: usize,
    /// Mean shift applied to every feature dimension of the new concept.
    pub magnitude: Real,
}

/// The four drift shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Instant switch at `start`.
    Sudden,
    /// Probabilistic mixture ramping over `[start, end)`.
    Gradual,
    /// Continuous morph over `[start, end)`.
    Incremental,
    /// New concept only within `[start, end)`, old returns afterwards.
    Reoccurring,
}

impl DriftKind {
    /// Canonical lowercase keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            DriftKind::Sudden => "sudden",
            DriftKind::Gradual => "gradual",
            DriftKind::Incremental => "incremental",
            DriftKind::Reoccurring => "reoccurring",
        }
    }

    /// Parses a keyword.
    pub fn from_keyword(s: &str) -> Option<DriftKind> {
        Some(match s {
            "sudden" => DriftKind::Sudden,
            "gradual" => DriftKind::Gradual,
            "incremental" => DriftKind::Incremental,
            "reoccurring" => DriftKind::Reoccurring,
            _ => return None,
        })
    }
}

/// Hot/idle traffic mix: the first `hot` sessions stream the full
/// `samples`-length stream, the rest stream `idle` samples (possibly zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficSpec {
    /// Number of hot sessions (`<= sessions`).
    pub hot: usize,
    /// Stream length for idle sessions.
    pub idle: usize,
}

/// Input guard policy to apply on the consumer side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardSpec {
    /// Guard mode.
    pub mode: GuardMode,
    /// Stuck-sensor run length limit (optional).
    pub stuck: Option<usize>,
}

/// Guard modes mirroring `seqdrift_core::GuardPolicy` without depending on
/// the core crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardMode {
    /// Drop malformed samples.
    Reject,
    /// Clamp out-of-range values.
    Clamp,
    /// Impute the last seen value.
    ImputeLast,
}

impl GuardMode {
    /// Canonical keyword (matches `seqdrift_core::GuardPolicy`'s `FromStr`).
    pub fn keyword(self) -> &'static str {
        match self {
            GuardMode::Reject => "reject",
            GuardMode::Clamp => "clamp",
            GuardMode::ImputeLast => "impute",
        }
    }

    /// Parses a keyword.
    pub fn from_keyword(s: &str) -> Option<GuardMode> {
        Some(match s {
            "reject" => GuardMode::Reject,
            "clamp" => GuardMode::Clamp,
            "impute" => GuardMode::ImputeLast,
            _ => return None,
        })
    }
}

/// Per-family fault-injection seeds. `None` disables the family.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultsSpec {
    /// Fleet fault plan seed (`FaultInjector::from_seed`).
    pub fleet: Option<u64>,
    /// Network chaos proxy seed.
    pub chaos: Option<u64>,
    /// Storage fault VFS seed.
    pub storage: Option<u64>,
    /// Model-poisoning injector seed.
    pub poison: Option<u64>,
}

impl FaultsSpec {
    /// True when no fault family is armed.
    pub fn is_empty(&self) -> bool {
        self.fleet.is_none()
            && self.chaos.is_none()
            && self.storage.is_none()
            && self.poison.is_none()
    }
}

/// Manifest of a recorded ingest bundle. File paths are relative to the
/// `.sqsc` file's directory.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedSpec {
    /// Feature dimensionality of the recorded rows.
    pub dim: usize,
    /// Reference model blob the sessions were created from (optional).
    pub reference: Option<String>,
    /// Ingest event log (informational; not needed for replay).
    pub log: Option<String>,
    /// Per-session row files, in recorded order.
    pub sessions: Vec<RecordedSession>,
}

/// One recorded session: id, row count, and data file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedSession {
    /// Wire session id.
    pub id: u64,
    /// Number of rows in `file`.
    pub rows: usize,
    /// Relative path to the CSV row file.
    pub file: String,
}

impl Scenario {
    /// Reads and parses a scenario file.
    pub fn load(path: &std::path::Path) -> Result<Scenario> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        Scenario::parse(&text)
    }

    /// Parses scenario text. See [`crate::parse`].
    pub fn parse(text: &str) -> Result<Scenario> {
        crate::parse::parse(text)
    }

    /// Serializes to the canonical form; `parse(render(s)) == s`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("sqsc {FORMAT_VERSION}\n"));
        out.push_str(&format!("name {}\n", self.name));
        match &self.body {
            ScenarioBody::Synthetic(s) => {
                out.push_str("kind synthetic\n");
                out.push_str(&format!("seed {}\n", s.seed));
                out.push_str(&format!("sessions {}\n", s.sessions));
                out.push_str(&format!("dim {}\n", s.dim));
                out.push_str(&format!("classes {}\n", s.classes));
                out.push_str(&format!("train {}\n", s.train));
                out.push_str(&format!("samples {}\n", s.samples));
                out.push_str(&format!("noise {}\n", s.noise));
                match s.drift.kind {
                    DriftKind::Sudden => out.push_str(&format!(
                        "drift sudden start {} magnitude {}\n",
                        s.drift.start, s.drift.magnitude
                    )),
                    k => out.push_str(&format!(
                        "drift {} start {} end {} magnitude {}\n",
                        k.keyword(),
                        s.drift.start,
                        s.drift.end,
                        s.drift.magnitude
                    )),
                }
                if s.stagger != 0 {
                    out.push_str(&format!("stagger {}\n", s.stagger));
                }
                if s.traffic.hot != s.sessions || s.traffic.idle != 0 {
                    out.push_str(&format!(
                        "traffic hot {} idle {}\n",
                        s.traffic.hot, s.traffic.idle
                    ));
                }
                if let Some(g) = &s.guard {
                    out.push_str(&format!("guard {}", g.mode.keyword()));
                    if let Some(k) = g.stuck {
                        out.push_str(&format!(" stuck {k}"));
                    }
                    out.push('\n');
                }
                for (family, seed) in [
                    ("fleet", s.faults.fleet),
                    ("chaos", s.faults.chaos),
                    ("storage", s.faults.storage),
                    ("poison", s.faults.poison),
                ] {
                    if let Some(seed) = seed {
                        out.push_str(&format!("faults {family} {seed}\n"));
                    }
                }
                if let Some(interval) = s.federate {
                    out.push_str(&format!("federate {interval}\n"));
                }
            }
            ScenarioBody::Recorded(r) => {
                out.push_str("kind recorded\n");
                out.push_str(&format!("dim {}\n", r.dim));
                if let Some(p) = &r.reference {
                    out.push_str(&format!("reference {p}\n"));
                }
                if let Some(p) = &r.log {
                    out.push_str(&format!("log {p}\n"));
                }
                for sess in &r.sessions {
                    out.push_str(&format!(
                        "session {} rows {} file {}\n",
                        sess.id, sess.rows, sess.file
                    ));
                }
            }
        }
        out
    }

    /// The synthetic spec, or an error for recorded scenarios.
    pub fn synthetic(&self) -> Result<&SynthSpec> {
        match &self.body {
            ScenarioBody::Synthetic(s) => Ok(s),
            ScenarioBody::Recorded(_) => Err(ScenarioError::Invalid(format!(
                "scenario '{}' is recorded, not synthetic",
                self.name
            ))),
        }
    }

    /// The recorded spec, or an error for synthetic scenarios.
    pub fn recorded(&self) -> Result<&RecordedSpec> {
        match &self.body {
            ScenarioBody::Recorded(r) => Ok(r),
            ScenarioBody::Synthetic(_) => Err(ScenarioError::Invalid(format!(
                "scenario '{}' is synthetic, not recorded",
                self.name
            ))),
        }
    }
}
