//! Declarative stream scenarios for seqdrift (`.sqsc` files).
//!
//! A *scenario* is a small, versioned, human-writable text file that pins
//! down an entire fleet workload: drift type × magnitude × schedule,
//! per-session stagger, traffic mix (hot vs. idle sessions), fault-injection
//! seeds, guard policy, and federation cadence. The same file drives three
//! consumers with **bit-identical** per-session streams:
//!
//! * `crates/eval` — scenario-driven experiment rows,
//! * `seqdrift fleet --scenario FILE` — the in-process fleet harness,
//! * `seqdrift load --scenario FILE` — the network load generator.
//!
//! Scenarios come in two kinds:
//!
//! * **synthetic** — streams are synthesized deterministically from a seed;
//!   every sample is a pure function of `(scenario, session, index)` and is
//!   therefore independent of worker count, feed order, and consumer.
//! * **recorded** — a bundle captured from a live `seqdrift serve` session
//!   (per-session rows + reference model + ingest event log) that replays
//!   the exact ingested bytes, turning any incident into a regression test.
//!
//! The format is hand-rolled (no external dependencies), line-oriented, and
//! versioned: the first meaningful line must be `sqsc 1`. Parse errors carry
//! the offending line number. [`Scenario::render`] emits a canonical form
//! whose re-parse compares equal (`parse(render(s)) == s`).
//!
//! ```text
//! sqsc 1
//! name gradual-wave
//! kind synthetic
//! seed 42
//! sessions 4
//! dim 8
//! classes 2
//! train 120
//! samples 600
//! drift gradual start 200 end 400 magnitude 0.8
//! stagger 25
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod model;
pub mod parse;
pub mod player;
pub mod record;

pub use model::{
    DriftKind, DriftSpec, FaultsSpec, GuardMode, GuardSpec, RecordedSession, RecordedSpec,
    Scenario, ScenarioBody, SynthSpec, TrafficSpec, FORMAT_VERSION,
};
pub use player::ScenarioPlayer;
pub use record::{RecordEvent, Recording};

use std::fmt;

/// Errors produced while parsing, validating, or playing a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// The scenario text is malformed; `line` is 1-based.
    Parse {
        /// 1-based line number of the offending (or last meaningful) line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The scenario is well-formed but semantically unusable for the
    /// requested operation (e.g. asking a recorded scenario for labels).
    Invalid(String),
    /// An I/O failure while reading or writing scenario files or bundles.
    Io(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Io(msg) => write!(f, "scenario io: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ScenarioError>;
