//! Hand-rolled line-oriented parser for `.sqsc` scenario text.
//!
//! Grammar (one directive per line; `#` starts a comment; blank lines are
//! ignored):
//!
//! ```text
//! sqsc 1                                   # version header, must be first
//! name <token>
//! kind synthetic | recorded
//! # synthetic:
//! seed <u64>        sessions <n>   dim <n>   classes <n>
//! train <n>         samples <n>    noise <float>
//! drift <kind> start <n> [end <n>] magnitude <float>
//! stagger <n>       traffic hot <n> idle <n>
//! guard <mode> [stuck <n>]
//! faults <fleet|chaos|storage|poison> <u64>
//! federate <n>
//! # recorded:
//! dim <n>   reference <file>   log <file>
//! session <id> rows <n> file <file>
//! ```
//!
//! Every error carries the 1-based line number of the offending line;
//! truncated input (missing required keys) reports the last meaningful line.

use seqdrift_linalg::Real;

use crate::model::*;
use crate::{Result, ScenarioError};

fn err(line: usize, msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Parse {
        line,
        msg: msg.into(),
    }
}

/// One `key` slot: remembers the line it was set on so duplicates and
/// semantic errors can point at it.
struct Slot<T> {
    value: Option<(usize, T)>,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot { value: None }
    }
}

impl<T> Slot<T> {
    fn set(&mut self, line: usize, key: &str, v: T) -> Result<()> {
        if let Some((prev, _)) = &self.value {
            return Err(err(
                line,
                format!("duplicate key '{key}' (first on line {prev})"),
            ));
        }
        self.value = Some((line, v));
        Ok(())
    }

    fn get(&self) -> Option<&T> {
        self.value.as_ref().map(|(_, v)| v)
    }

    fn line(&self) -> Option<usize> {
        self.value.as_ref().map(|(l, _)| *l)
    }

    fn require(&self, last_line: usize, key: &str) -> Result<&T> {
        self.get().ok_or_else(|| {
            err(
                last_line,
                format!("truncated scenario: missing required key '{key}'"),
            )
        })
    }
}

struct Tokens<'a> {
    line: usize,
    toks: std::slice::Iter<'a, &'a str>,
}

impl<'a> Tokens<'a> {
    fn next(&mut self, what: &str) -> Result<&'a str> {
        self.toks
            .next()
            .copied()
            .ok_or_else(|| err(self.line, format!("expected {what}, found end of line")))
    }

    fn usize(&mut self, what: &str) -> Result<usize> {
        let t = self.next(what)?;
        t.parse().map_err(|_| {
            err(
                self.line,
                format!("{what}: '{t}' is not a non-negative integer"),
            )
        })
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let t = self.next(what)?;
        t.parse().map_err(|_| {
            err(
                self.line,
                format!("{what}: '{t}' is not a non-negative integer"),
            )
        })
    }

    fn real(&mut self, what: &str) -> Result<Real> {
        let t = self.next(what)?;
        let v: Real = t
            .parse()
            .map_err(|_| err(self.line, format!("{what}: '{t}' is not a number")))?;
        if !v.is_finite() {
            return Err(err(self.line, format!("{what}: '{t}' must be finite")));
        }
        Ok(v)
    }

    fn keyword(&mut self, what: &str, expected: &str) -> Result<()> {
        let t = self.next(what)?;
        if t != expected {
            return Err(err(
                self.line,
                format!("expected '{expected}', found '{t}'"),
            ));
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        if let Some(t) = self.toks.next() {
            return Err(err(self.line, format!("unexpected trailing token '{t}'")));
        }
        Ok(())
    }
}

/// Parses scenario text into a [`Scenario`].
pub fn parse(text: &str) -> Result<Scenario> {
    // Lex: strip comments/blanks, keep (line_no, tokens).
    let mut lines: Vec<(usize, Vec<&str>)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let meat = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let toks: Vec<&str> = meat.split_whitespace().collect();
        if !toks.is_empty() {
            lines.push((i + 1, toks));
        }
    }
    let last_line = lines.last().map(|(l, _)| *l).unwrap_or(1);

    let mut it = lines.iter();

    // Version header.
    let (vline, vtoks) = it
        .next()
        .ok_or_else(|| err(1, "empty scenario: missing 'sqsc' version header"))?;
    {
        let mut t = Tokens {
            line: *vline,
            toks: vtoks.iter(),
        };
        let magic = t.next("'sqsc' header")?;
        if magic != "sqsc" {
            return Err(err(
                *vline,
                format!("expected 'sqsc' version header, found '{magic}'"),
            ));
        }
        let version: u32 = {
            let tok = t.next("format version")?;
            tok.parse()
                .map_err(|_| err(*vline, format!("format version: '{tok}' is not an integer")))?
        };
        if version != FORMAT_VERSION {
            return Err(err(
                *vline,
                format!("unsupported format version {version} (this build reads version {FORMAT_VERSION})"),
            ));
        }
        t.finish()?;
    }

    // Accumulators.
    let mut name: Slot<String> = Slot::default();
    let mut kind: Slot<String> = Slot::default();
    let mut seed: Slot<u64> = Slot::default();
    let mut sessions: Slot<usize> = Slot::default();
    let mut dim: Slot<usize> = Slot::default();
    let mut classes: Slot<usize> = Slot::default();
    let mut train: Slot<usize> = Slot::default();
    let mut samples: Slot<usize> = Slot::default();
    let mut noise: Slot<Real> = Slot::default();
    let mut drift: Slot<DriftSpec> = Slot::default();
    let mut stagger: Slot<usize> = Slot::default();
    let mut traffic: Slot<TrafficSpec> = Slot::default();
    let mut guard: Slot<GuardSpec> = Slot::default();
    let mut federate: Slot<u64> = Slot::default();
    let mut reference: Slot<String> = Slot::default();
    let mut log: Slot<String> = Slot::default();
    let mut fault_fleet: Slot<u64> = Slot::default();
    let mut fault_chaos: Slot<u64> = Slot::default();
    let mut fault_storage: Slot<u64> = Slot::default();
    let mut fault_poison: Slot<u64> = Slot::default();
    let mut rec_sessions: Vec<(usize, RecordedSession)> = Vec::new();

    for (line, toks) in it {
        let line = *line;
        let mut t = Tokens {
            line,
            toks: toks.iter(),
        };
        let key = t.next("directive")?;
        match key {
            "sqsc" => return Err(err(line, "duplicate 'sqsc' version header")),
            "name" => name.set(line, key, t.next("scenario name")?.to_string())?,
            "kind" => {
                let k = t.next("'synthetic' or 'recorded'")?;
                if k != "synthetic" && k != "recorded" {
                    return Err(err(
                        line,
                        format!("kind must be 'synthetic' or 'recorded', found '{k}'"),
                    ));
                }
                kind.set(line, key, k.to_string())?;
            }
            "seed" => seed.set(line, key, t.u64("seed")?)?,
            "sessions" => sessions.set(line, key, t.usize("sessions")?)?,
            "dim" => dim.set(line, key, t.usize("dim")?)?,
            "classes" => classes.set(line, key, t.usize("classes")?)?,
            "train" => train.set(line, key, t.usize("train")?)?,
            "samples" => samples.set(line, key, t.usize("samples")?)?,
            "noise" => noise.set(line, key, t.real("noise")?)?,
            "drift" => {
                let kw = t.next("drift kind")?;
                let dk = DriftKind::from_keyword(kw).ok_or_else(|| {
                    err(
                        line,
                        format!(
                            "unknown drift kind '{kw}' (sudden, gradual, incremental, reoccurring)"
                        ),
                    )
                })?;
                t.keyword("'start'", "start")?;
                let start = t.usize("drift start")?;
                let end = if dk == DriftKind::Sudden {
                    start
                } else {
                    t.keyword("'end'", "end")?;
                    let end = t.usize("drift end")?;
                    if end <= start {
                        return Err(err(
                            line,
                            format!("drift end {end} must be greater than start {start}"),
                        ));
                    }
                    end
                };
                t.keyword("'magnitude'", "magnitude")?;
                let magnitude = t.real("drift magnitude")?;
                drift.set(
                    line,
                    key,
                    DriftSpec {
                        kind: dk,
                        start,
                        end,
                        magnitude,
                    },
                )?;
            }
            "stagger" => stagger.set(line, key, t.usize("stagger")?)?,
            "traffic" => {
                t.keyword("'hot'", "hot")?;
                let hot = t.usize("hot session count")?;
                t.keyword("'idle'", "idle")?;
                let idle = t.usize("idle sample count")?;
                traffic.set(line, key, TrafficSpec { hot, idle })?;
            }
            "guard" => {
                let kw = t.next("guard mode")?;
                let mode = GuardMode::from_keyword(kw).ok_or_else(|| {
                    err(
                        line,
                        format!("unknown guard mode '{kw}' (reject, clamp, impute)"),
                    )
                })?;
                let stuck = if t.toks.clone().next().is_some() {
                    t.keyword("'stuck'", "stuck")?;
                    Some(t.usize("stuck limit")?)
                } else {
                    None
                };
                guard.set(line, key, GuardSpec { mode, stuck })?;
            }
            "faults" => {
                let family = t.next("fault family")?;
                let fseed = t.u64("fault seed")?;
                let slot = match family {
                    "fleet" => &mut fault_fleet,
                    "chaos" => &mut fault_chaos,
                    "storage" => &mut fault_storage,
                    "poison" => &mut fault_poison,
                    other => {
                        return Err(err(
                            line,
                            format!(
                                "unknown fault family '{other}' (fleet, chaos, storage, poison)"
                            ),
                        ))
                    }
                };
                slot.set(line, &format!("faults {family}"), fseed)?;
            }
            "federate" => federate.set(line, key, t.u64("federate interval")?)?,
            "reference" => reference.set(line, key, t.next("reference file")?.to_string())?,
            "log" => log.set(line, key, t.next("log file")?.to_string())?,
            "session" => {
                let id = t.u64("session id")?;
                t.keyword("'rows'", "rows")?;
                let rows = t.usize("row count")?;
                t.keyword("'file'", "file")?;
                let file = t.next("row file")?.to_string();
                if rec_sessions.iter().any(|(_, s)| s.id == id) {
                    return Err(err(line, format!("duplicate session id {id}")));
                }
                rec_sessions.push((line, RecordedSession { id, rows, file }));
            }
            other => return Err(err(line, format!("unknown directive '{other}'"))),
        }
        t.finish()?;
    }

    // Assemble.
    let name_v = name.require(last_line, "name")?.clone();
    let kind_v = kind.require(last_line, "kind")?.clone();

    let forbid = |slot_line: Option<usize>, key: &str, kind: &str| -> Result<()> {
        match slot_line {
            Some(l) => Err(err(
                l,
                format!("key '{key}' is not valid in a {kind} scenario"),
            )),
            None => Ok(()),
        }
    };

    if kind_v == "synthetic" {
        forbid(reference.line(), "reference", "synthetic")?;
        forbid(log.line(), "log", "synthetic")?;
        if let Some((l, _)) = rec_sessions.first() {
            return Err(err(
                *l,
                "key 'session' is not valid in a synthetic scenario",
            ));
        }
        let sessions_v = *sessions.require(last_line, "sessions")?;
        let dim_v = *dim.require(last_line, "dim")?;
        let classes_v = *classes.require(last_line, "classes")?;
        let train_v = *train.require(last_line, "train")?;
        let samples_v = *samples.require(last_line, "samples")?;
        let drift_v = drift.require(last_line, "drift")?.clone();
        for (slot_line, key, v) in [
            (sessions.line(), "sessions", sessions_v),
            (dim.line(), "dim", dim_v),
            (classes.line(), "classes", classes_v),
            (train.line(), "train", train_v),
            (samples.line(), "samples", samples_v),
        ] {
            if v == 0 {
                // slot_line is always Some here: the value was required above.
                return Err(err(
                    slot_line.unwrap_or(last_line),
                    format!("{key} must be at least 1"),
                ));
            }
        }
        let noise_v = noise.get().copied().unwrap_or(0.05);
        if noise_v <= 0.0 {
            return Err(err(
                noise.line().unwrap_or(last_line),
                "noise must be positive",
            ));
        }
        let traffic_v = traffic.get().cloned().unwrap_or(TrafficSpec {
            hot: sessions_v,
            idle: 0,
        });
        if traffic_v.hot > sessions_v {
            return Err(err(
                traffic.line().unwrap_or(last_line),
                format!(
                    "traffic hot {} exceeds sessions {sessions_v}",
                    traffic_v.hot
                ),
            ));
        }
        Ok(Scenario {
            name: name_v,
            body: ScenarioBody::Synthetic(SynthSpec {
                seed: *seed.require(last_line, "seed")?,
                sessions: sessions_v,
                dim: dim_v,
                classes: classes_v,
                train: train_v,
                samples: samples_v,
                noise: noise_v,
                drift: drift_v,
                stagger: stagger.get().copied().unwrap_or(0),
                traffic: traffic_v,
                guard: guard.get().cloned(),
                faults: FaultsSpec {
                    fleet: fault_fleet.get().copied(),
                    chaos: fault_chaos.get().copied(),
                    storage: fault_storage.get().copied(),
                    poison: fault_poison.get().copied(),
                },
                federate: federate.get().copied(),
            }),
        })
    } else {
        for (slot_line, key) in [
            (seed.line(), "seed"),
            (sessions.line(), "sessions"),
            (classes.line(), "classes"),
            (train.line(), "train"),
            (samples.line(), "samples"),
            (noise.line(), "noise"),
            (drift.line(), "drift"),
            (stagger.line(), "stagger"),
            (traffic.line(), "traffic"),
            (guard.line(), "guard"),
            (federate.line(), "federate"),
            (fault_fleet.line(), "faults fleet"),
            (fault_chaos.line(), "faults chaos"),
            (fault_storage.line(), "faults storage"),
            (fault_poison.line(), "faults poison"),
        ] {
            forbid(slot_line, key, "recorded")?;
        }
        let dim_v = *dim.require(last_line, "dim")?;
        if dim_v == 0 {
            return Err(err(
                dim.line().unwrap_or(last_line),
                "dim must be at least 1",
            ));
        }
        if rec_sessions.is_empty() {
            return Err(err(
                last_line,
                "truncated scenario: recorded scenario needs at least one 'session' line",
            ));
        }
        Ok(Scenario {
            name: name_v,
            body: ScenarioBody::Recorded(RecordedSpec {
                dim: dim_v,
                reference: reference.get().cloned(),
                log: log.get().cloned(),
                sessions: rec_sessions.into_iter().map(|(_, s)| s).collect(),
            }),
        })
    }
}
