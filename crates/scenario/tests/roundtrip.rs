//! Scenario format tests: seeded round-trip property loop, hostile and
//! truncated input rejection (with line numbers), playback determinism, and
//! recorded-bundle round-trips.

use seqdrift_linalg::Rng;
use seqdrift_scenario::{
    DriftKind, DriftSpec, FaultsSpec, GuardMode, GuardSpec, Recording, Scenario, ScenarioBody,
    ScenarioError, ScenarioPlayer, SynthSpec, TrafficSpec,
};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sqsc_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Draws a random-but-valid synthetic scenario from a seeded RNG.
fn random_scenario(rng: &mut Rng) -> Scenario {
    let sessions = 1 + rng.below(8) as usize;
    let kind = match rng.below(4) {
        0 => DriftKind::Sudden,
        1 => DriftKind::Gradual,
        2 => DriftKind::Incremental,
        _ => DriftKind::Reoccurring,
    };
    let start = 10 + rng.below(200) as usize;
    let end = start + 1 + rng.below(200) as usize;
    let guard = match rng.below(4) {
        0 => None,
        1 => Some(GuardSpec {
            mode: GuardMode::Reject,
            stuck: None,
        }),
        2 => Some(GuardSpec {
            mode: GuardMode::Clamp,
            stuck: Some(1 + rng.below(16) as usize),
        }),
        _ => Some(GuardSpec {
            mode: GuardMode::ImputeLast,
            stuck: Some(1 + rng.below(16) as usize),
        }),
    };
    let maybe = |rng: &mut Rng| -> Option<u64> { (rng.below(2) == 0).then(|| rng.next_u64() >> 1) };
    let hot = 1 + rng.below(sessions as u64) as usize;
    Scenario {
        name: format!("prop-{}", rng.below(1_000_000)),
        body: ScenarioBody::Synthetic(SynthSpec {
            seed: rng.next_u64(),
            sessions,
            dim: 1 + rng.below(16) as usize,
            classes: 1 + rng.below(4) as usize,
            train: 1 + rng.below(64) as usize,
            samples: 1 + rng.below(512) as usize,
            noise: 0.01 + 0.1 * rng.uniform(),
            drift: DriftSpec {
                kind,
                start,
                end: if kind == DriftKind::Sudden {
                    start
                } else {
                    end
                },
                magnitude: rng.uniform_range(-2.0, 2.0),
            },
            stagger: rng.below(40) as usize,
            traffic: TrafficSpec {
                hot,
                idle: rng.below(20) as usize,
            },
            guard,
            faults: FaultsSpec {
                fleet: maybe(rng),
                chaos: maybe(rng),
                storage: maybe(rng),
                poison: maybe(rng),
            },
            federate: maybe(rng),
        }),
    }
}

#[test]
fn render_parse_roundtrip_property_loop() {
    let mut rng = Rng::seed_from(0x5C5C_0001);
    for case in 0..250 {
        let s = random_scenario(&mut rng);
        let text = s.render();
        let back = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: canonical text failed to parse: {e}\n{text}"));
        assert_eq!(back, s, "case {case}: round-trip mismatch\n{text}");
        // Render is a fixed point: render(parse(render(s))) == render(s).
        assert_eq!(back.render(), text, "case {case}: render not canonical");
    }
}

#[test]
fn comments_and_blank_lines_are_ignored() {
    let text = "\n# header comment\nsqsc 1\n\nname demo # trailing comment\nkind synthetic\nseed 7\nsessions 2\ndim 3\nclasses 2\ntrain 10\nsamples 50\ndrift sudden start 20 magnitude 1.5\n";
    let s = Scenario::parse(text).unwrap();
    assert_eq!(s.name, "demo");
    let spec = s.synthetic().unwrap();
    assert_eq!(spec.sessions, 2);
    assert_eq!(spec.drift.kind, DriftKind::Sudden);
}

/// Each hostile input must be rejected with the expected 1-based line number.
#[test]
fn hostile_inputs_rejected_with_line_numbers() {
    let cases: &[(&str, usize, &str)] = &[
        ("", 1, "empty"),
        ("bogus 1\n", 1, "bad magic"),
        ("sqsc 2\n", 1, "unsupported version"),
        ("sqsc one\n", 1, "non-numeric version"),
        ("sqsc 1\nname a\nkind alien\n", 3, "bad kind"),
        ("sqsc 1\nname a\nname b\n", 3, "duplicate key"),
        ("sqsc 1\nname a\nwibble 3\n", 3, "unknown directive"),
        ("sqsc 1\nname a\nkind synthetic\nseed -4\n", 4, "negative seed"),
        ("sqsc 1\nname a\nkind synthetic\nseed 1\nsessions two\n", 5, "non-numeric"),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\ndrift gradual start 50 end 40 magnitude 1\n",
            5,
            "end before start",
        ),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\ndrift gradual start 10 magnitude 1\n",
            5,
            "gradual missing end",
        ),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\ndrift sideways start 10 magnitude 1\n",
            5,
            "unknown drift kind",
        ),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\nsessions 2\ndim 3\nclasses 1\ntrain 5\nsamples 9\ndrift sudden start 2 magnitude 1\nnoise nan\n",
            11,
            "non-finite noise",
        ),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\nsessions 2\ndim 0\nclasses 1\ntrain 5\nsamples 9\ndrift sudden start 2 magnitude 1\n",
            6,
            "zero dim",
        ),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\nsessions 2\ndim 3\nclasses 1\ntrain 5\nsamples 9\ndrift sudden start 2 magnitude 1\ntraffic hot 5 idle 0\n",
            11,
            "hot exceeds sessions",
        ),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\nsessions 2\ndim 3\nclasses 1\ntrain 5\nsamples 9\ndrift sudden start 2 magnitude 1\nguard shrug\n",
            11,
            "unknown guard mode",
        ),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\nsessions 2\ndim 3\nclasses 1\ntrain 5\nsamples 9\ndrift sudden start 2 magnitude 1\nfaults gremlin 5\n",
            11,
            "unknown fault family",
        ),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\nsessions 2\ndim 3\nclasses 1\ntrain 5\nsamples 9\ndrift sudden start 2 magnitude 1 extra\n",
            10,
            "trailing token",
        ),
        (
            "sqsc 1\nname a\nkind synthetic\nseed 1\nsessions 2\ndim 3\nclasses 1\ntrain 5\nsamples 9\ndrift sudden start 2 magnitude 1\nsession 0 rows 3 file x.csv\n",
            11,
            "recorded key in synthetic",
        ),
        (
            "sqsc 1\nname a\nkind recorded\ndim 3\nseed 9\nsession 0 rows 3 file x.csv\n",
            5,
            "synthetic key in recorded",
        ),
        ("sqsc 1\nname a\nkind recorded\ndim 3\n", 4, "recorded without sessions"),
        (
            "sqsc 1\nname a\nkind recorded\ndim 3\nsession 0 rows 3 file x.csv\nsession 0 rows 2 file y.csv\n",
            6,
            "duplicate session id",
        ),
    ];
    for (text, want_line, what) in cases {
        match Scenario::parse(text) {
            Err(ScenarioError::Parse { line, msg }) => {
                assert_eq!(
                    line, *want_line,
                    "{what}: expected error on line {want_line}, got line {line} ({msg})"
                );
                // Display must surface the line number for operators.
                let shown = ScenarioError::Parse { line, msg }.to_string();
                assert!(
                    shown.starts_with(&format!("line {want_line}:")),
                    "{what}: {shown}"
                );
            }
            Err(other) => panic!("{what}: expected Parse error, got {other}"),
            Ok(_) => panic!("{what}: hostile input was accepted"),
        }
    }
}

/// Truncated files (cut off mid-way) are rejected, pointing at the last
/// meaningful line.
#[test]
fn truncated_input_rejected() {
    let full = "sqsc 1\nname cut\nkind synthetic\nseed 1\nsessions 2\ndim 3\nclasses 1\ntrain 5\nsamples 9\ndrift sudden start 2 magnitude 1\n";
    assert!(Scenario::parse(full).is_ok());
    // Drop lines from the end one at a time; every prefix must fail.
    let lines: Vec<&str> = full.lines().collect();
    for keep in 1..lines.len() {
        let partial = lines[..keep].join("\n");
        let e = Scenario::parse(&partial).expect_err("truncated input accepted");
        match e {
            ScenarioError::Parse { line, ref msg } => {
                assert_eq!(line, keep, "truncation at {keep} lines: wrong line ({msg})");
                assert!(
                    msg.contains("missing required key"),
                    "unexpected msg: {msg}"
                );
            }
            other => panic!("expected Parse error, got {other}"),
        }
    }
}

#[test]
fn playback_is_deterministic_and_label_consistent() {
    let text = "sqsc 1\nname det\nkind synthetic\nseed 99\nsessions 3\ndim 5\nclasses 2\ntrain 20\nsamples 120\nnoise 0.07\ndrift gradual start 30 end 80 magnitude 1.2\nstagger 10\ntraffic hot 2 idle 15\n";
    let s = Scenario::parse(text).unwrap();
    let p1 = ScenarioPlayer::new(s.clone(), None).unwrap();
    let p2 = ScenarioPlayer::new(s, None).unwrap();
    assert_eq!(p1.sessions(), vec![0, 1, 2]);
    for sid in p1.sessions() {
        let a = p1.stream(sid).unwrap();
        let b = p2.stream(sid).unwrap();
        assert_eq!(
            a, b,
            "session {sid}: streams differ across player instances"
        );
        // Features of the labelled stream are bit-identical to stream().
        let labelled = p1.labeled_stream(sid).unwrap();
        let feats: Vec<Vec<f32>> = labelled.iter().map(|s| s.x.clone()).collect();
        assert_eq!(a, feats, "session {sid}: labelled features diverge");
    }
    // Traffic mix: hot sessions get `samples`, idle get `idle`.
    assert_eq!(p1.stream(0).unwrap().len(), 120);
    assert_eq!(p1.stream(1).unwrap().len(), 120);
    assert_eq!(p1.stream(2).unwrap().len(), 15);
    // Stagger shifts the schedule.
    assert_eq!(p1.schedule_for(0).unwrap().start, 30);
    assert_eq!(p1.schedule_for(2).unwrap().start, 50);
    // Sessions are decorrelated: same length, different content.
    assert_ne!(p1.stream(0).unwrap(), p1.stream(1).unwrap());
    // Datasets validate and reuse the same bits.
    let d = p1.dataset(0).unwrap();
    d.validate().unwrap();
    assert_eq!(d.test.len(), 120);
    assert_eq!(d.train.len(), 40);
    assert_eq!(d.drift_start, 30);
}

#[test]
fn recorded_bundle_roundtrips_bit_exact() {
    let dir = tmpdir("bundle");
    let mut rec = Recording::new("incident 7/a");
    rec.set_dim(3);
    rec.set_reference(vec![1, 2, 3, 9]);
    let mut rng = Rng::seed_from(0xB0B);
    let mut want: Vec<(u64, Vec<f32>)> = Vec::new();
    for sid in [0u64, 4, 9] {
        let mut flat = Vec::new();
        for _ in 0..17 {
            for _ in 0..3 {
                flat.push(rng.normal(0.0, 1.0));
            }
        }
        rec.push_rows(sid, &flat);
        rec.push_event(5 * sid, sid, "hello", 0);
        rec.push_event(5 * sid + 1, sid, "samples", 17);
        want.push((sid, flat));
    }
    let manifest = rec.write_bundle(&dir).unwrap();
    assert_eq!(manifest, dir.join("scenario.sqsc"));

    let player = ScenarioPlayer::from_file(&manifest).unwrap();
    assert_eq!(player.name(), "incident-7-a");
    assert_eq!(player.dim(), 3);
    assert_eq!(player.sessions(), vec![0, 4, 9]);
    assert_eq!(player.reference_model(), Some(&[1u8, 2, 3, 9][..]));
    for (sid, flat) in &want {
        let rows = player.stream(*sid).unwrap();
        let got: Vec<f32> = rows.into_iter().flatten().collect();
        assert_eq!(&got, flat, "session {sid}: replay is not bit-exact");
    }
    // Labels are unavailable for recorded scenarios.
    assert!(player.labeled_stream(0).is_err());
    // The log was written and is readable.
    let log = std::fs::read_to_string(dir.join("ingest.log")).unwrap();
    assert!(log.lines().count() >= 7, "log too short:\n{log}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_recording_refuses_to_write() {
    let dir = tmpdir("empty");
    let rec = Recording::new("nothing");
    assert!(rec.write_bundle(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
