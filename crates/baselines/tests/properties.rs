//! Property-based tests for the baseline detectors and their substrates.

use proptest::prelude::*;
use seqdrift_baselines::gmm::DiagonalGmm;
use seqdrift_baselines::kmeans::KMeans;
use seqdrift_baselines::quanttree::{monte_carlo_threshold, Partition};
use seqdrift_baselines::{Adwin, Cusum, Ddm, ErrorRateDetector, PageHinkley};
use seqdrift_linalg::{Real, Rng};

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|_| {
            let mut x = vec![0.0; dim];
            rng.fill_uniform(&mut x, -5.0, 5.0);
            x
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quant Tree partitions: bin probabilities sum to 1, equal the
    /// empirical bin counts of the training data, and every point (training
    /// or new) maps to a valid bin.
    #[test]
    fn quanttree_partition_invariants(
        seed in 0u64..5000,
        n in 20usize..200,
        dim in 1usize..6,
        k in 2usize..9,
    ) {
        prop_assume!(n >= k);
        let data = random_points(n, dim, seed);
        let mut rng = Rng::seed_from(seed ^ 1);
        let p = Partition::build(&data, k, &mut rng);
        prop_assert_eq!(p.k(), k);
        let total: Real = p.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);

        let mut counts = vec![0usize; k];
        for x in &data {
            let b = p.bin_of(x);
            prop_assert!(b < k);
            counts[b] += 1;
        }
        for (c, &prob) in counts.iter().zip(p.probs()) {
            prop_assert!((*c as Real / n as Real - prob).abs() < 1e-5);
        }
        // Arbitrary new points also land in a valid bin.
        for x in random_points(10, dim, seed ^ 2) {
            prop_assert!(p.bin_of(&x) < k);
        }
    }

    /// Monte-Carlo thresholds are positive and monotone in alpha.
    #[test]
    fn quanttree_threshold_monotone(seed in 0u64..1000) {
        let loose = monte_carlo_threshold(100, 4, 32, 0.10, 200, seed);
        let tight = monte_carlo_threshold(100, 4, 32, 0.01, 200, seed);
        prop_assert!(loose > 0.0);
        prop_assert!(tight >= loose);
    }

    /// k-means invariants: every assignment is the nearest centroid, and
    /// the inertia equals the recomputed within-cluster SSE.
    #[test]
    fn kmeans_assignments_are_nearest(
        seed in 0u64..5000,
        n in 10usize..100,
        k in 1usize..6,
    ) {
        let data = random_points(n, 3, seed);
        let mut rng = Rng::seed_from(seed ^ 3);
        let km = KMeans::fit(&data, k, 30, &mut rng);
        let mut sse = 0.0;
        for (x, &a) in data.iter().zip(km.assignments.iter()) {
            let (nearest, d) = km.assign(x);
            // Nearest may tie; distances must match.
            let assigned_d = seqdrift_linalg::vector::dist_l2_sq(x, &km.centroids[a]);
            prop_assert!(assigned_d <= d + 1e-4, "assigned {assigned_d} vs nearest {d}");
            let _ = nearest;
            sse += assigned_d;
        }
        prop_assert!((sse - km.inertia).abs() < 1e-2 * (1.0 + sse));
    }

    /// GMM invariants: weights sum to 1; min-Mahalanobis is bounded by each
    /// component's distance and non-negative.
    #[test]
    fn gmm_invariants(seed in 0u64..5000, n in 20usize..100) {
        let data = random_points(n, 4, seed);
        let mut rng = Rng::seed_from(seed ^ 4);
        let km = KMeans::fit(&data, 3.min(n), 30, &mut rng);
        let gmm = DiagonalGmm::from_kmeans(&data, &km);
        let wsum: Real = gmm.weights.iter().sum();
        prop_assert!((wsum - 1.0).abs() < 1e-4);
        for x in random_points(10, 4, seed ^ 5) {
            let min = gmm.min_mahalanobis_sq(&x);
            prop_assert!(min >= 0.0);
            for c in 0..gmm.k() {
                prop_assert!(min <= gmm.mahalanobis_sq(c, &x) + 1e-5);
            }
        }
    }

    /// Error-rate detectors never panic and keep their statistics sane on
    /// arbitrary boolean streams.
    #[test]
    fn error_rate_detectors_total(stream in proptest::collection::vec(any::<bool>(), 1..500)) {
        let mut ddm = Ddm::default();
        let mut adwin = Adwin::default();
        for &e in &stream {
            let _ = ddm.push(e);
            let _ = adwin.push(e);
        }
        prop_assert_eq!(ddm.count(), stream.len() as u64);
        prop_assert!(ddm.error_rate() >= 0.0 && ddm.error_rate() <= 1.0);
        prop_assert!(adwin.window_len() <= stream.len() as u64);
        prop_assert!(adwin.mean() >= 0.0 && adwin.mean() <= 1.0);
    }

    /// CUSUM and Page-Hinkley statistics stay non-negative and reset
    /// cleanly on arbitrary real streams.
    #[test]
    fn scalar_detectors_total(stream in proptest::collection::vec(-100.0f32..100.0, 1..300)) {
        let mut cusum = Cusum::new(0.0, 0.5, 50.0);
        let mut ph = PageHinkley::new(0.1, 100.0);
        for &x in &stream {
            let _ = cusum.push(x as Real);
            let _ = ph.push(x as Real);
        }
        let (up, down) = cusum.statistics();
        prop_assert!(up >= 0.0 && down >= 0.0);
        prop_assert!(ph.statistic() >= 0.0);
        cusum.reset();
        ph.reset();
        prop_assert_eq!(cusum.statistics(), (0.0, 0.0));
        prop_assert_eq!(ph.statistic(), 0.0);
    }
}
