//! Property-based tests for the baseline detectors and their substrates,
//! driven by seeded RNG loops (the workspace builds offline; no proptest).

use seqdrift_baselines::gmm::DiagonalGmm;
use seqdrift_baselines::kmeans::KMeans;
use seqdrift_baselines::quanttree::{monte_carlo_threshold, Partition};
use seqdrift_baselines::{Adwin, Cusum, Ddm, ErrorRateDetector, PageHinkley};
use seqdrift_linalg::{Real, Rng};

const CASES: u64 = 32;

fn for_cases(f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(0x22BB ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng);
    }
}

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|_| {
            let mut x = vec![0.0; dim];
            rng.fill_uniform(&mut x, -5.0, 5.0);
            x
        })
        .collect()
}

/// Quant Tree partitions: bin probabilities sum to 1, equal the empirical
/// bin counts of the training data, and every point (training or new) maps
/// to a valid bin.
#[test]
fn quanttree_partition_invariants() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let k = 2 + rng.below(7) as usize;
        let n = (20 + rng.below(180) as usize).max(k);
        let dim = 1 + rng.below(5) as usize;
        let data = random_points(n, dim, seed);
        let mut prng = Rng::seed_from(seed ^ 1);
        let p = Partition::build(&data, k, &mut prng);
        assert_eq!(p.k(), k);
        let total: Real = p.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-4);

        let mut counts = vec![0usize; k];
        for x in &data {
            let b = p.bin_of(x);
            assert!(b < k);
            counts[b] += 1;
        }
        for (c, &prob) in counts.iter().zip(p.probs()) {
            assert!((*c as Real / n as Real - prob).abs() < 1e-5);
        }
        // Arbitrary new points also land in a valid bin.
        for x in random_points(10, dim, seed ^ 2) {
            assert!(p.bin_of(&x) < k);
        }
    });
}

/// Monte-Carlo thresholds are positive and monotone in alpha.
#[test]
fn quanttree_threshold_monotone() {
    for_cases(|rng| {
        let seed = rng.below(1000);
        let loose = monte_carlo_threshold(100, 4, 32, 0.10, 200, seed);
        let tight = monte_carlo_threshold(100, 4, 32, 0.01, 200, seed);
        assert!(loose > 0.0);
        assert!(tight >= loose);
    });
}

/// k-means invariants: every assignment is the nearest centroid, and the
/// inertia equals the recomputed within-cluster SSE.
#[test]
fn kmeans_assignments_are_nearest() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let n = 10 + rng.below(90) as usize;
        let k = 1 + rng.below(5) as usize;
        let data = random_points(n, 3, seed);
        let mut krng = Rng::seed_from(seed ^ 3);
        let km = KMeans::fit(&data, k, 30, &mut krng);
        let mut sse = 0.0;
        for (x, &a) in data.iter().zip(km.assignments.iter()) {
            let (nearest, d) = km.assign(x);
            // Nearest may tie; distances must match.
            let assigned_d = seqdrift_linalg::vector::dist_l2_sq(x, &km.centroids[a]);
            assert!(
                assigned_d <= d + 1e-4,
                "assigned {assigned_d} vs nearest {d}"
            );
            let _ = nearest;
            sse += assigned_d;
        }
        assert!((sse - km.inertia).abs() < 1e-2 * (1.0 + sse));
    });
}

/// GMM invariants: weights sum to 1; min-Mahalanobis is bounded by each
/// component's distance and non-negative.
#[test]
fn gmm_invariants() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let n = 20 + rng.below(80) as usize;
        let data = random_points(n, 4, seed);
        let mut krng = Rng::seed_from(seed ^ 4);
        let km = KMeans::fit(&data, 3.min(n), 30, &mut krng);
        let gmm = DiagonalGmm::from_kmeans(&data, &km);
        let wsum: Real = gmm.weights.iter().sum();
        assert!((wsum - 1.0).abs() < 1e-4);
        for x in random_points(10, 4, seed ^ 5) {
            let min = gmm.min_mahalanobis_sq(&x);
            assert!(min >= 0.0);
            for c in 0..gmm.k() {
                assert!(min <= gmm.mahalanobis_sq(c, &x) + 1e-5);
            }
        }
    });
}

/// Error-rate detectors never panic and keep their statistics sane on
/// arbitrary boolean streams.
#[test]
fn error_rate_detectors_total() {
    for_cases(|rng| {
        let n = 1 + rng.below(499) as usize;
        let stream: Vec<bool> = (0..n).map(|_| rng.uniform() < 0.5).collect();
        let mut ddm = Ddm::default();
        let mut adwin = Adwin::default();
        for &e in &stream {
            let _ = ddm.push(e);
            let _ = adwin.push(e);
        }
        assert_eq!(ddm.count(), stream.len() as u64);
        assert!(ddm.error_rate() >= 0.0 && ddm.error_rate() <= 1.0);
        assert!(adwin.window_len() <= stream.len() as u64);
        assert!(adwin.mean() >= 0.0 && adwin.mean() <= 1.0);
    });
}

/// CUSUM and Page-Hinkley statistics stay non-negative and reset cleanly on
/// arbitrary real streams.
#[test]
fn scalar_detectors_total() {
    for_cases(|rng| {
        let n = 1 + rng.below(299) as usize;
        let mut stream = vec![0.0; n];
        rng.fill_uniform(&mut stream, -100.0, 100.0);
        let mut cusum = Cusum::new(0.0, 0.5, 50.0);
        let mut ph = PageHinkley::new(0.1, 100.0);
        for &x in &stream {
            let _ = cusum.push(x);
            let _ = ph.push(x);
        }
        let (up, down) = cusum.statistics();
        assert!(up >= 0.0 && down >= 0.0);
        assert!(ph.statistic() >= 0.0);
        cusum.reset();
        ph.reset();
        assert_eq!(cusum.statistics(), (0.0, 0.0));
        assert_eq!(ph.statistic(), 0.0);
    });
}
