//! AR(p)-residual drift detector (cf. arXiv 2203.04769): fit an
//! autoregressive model to a rolling window of a scalar signal by least
//! squares, then run a Page–Hinkley test on the one-step-ahead prediction
//! residuals.
//!
//! The intuition: while the stream is stationary, an AR(p) model learned on
//! recent history predicts the next value well and the residual magnitude
//! hovers around a stable baseline. Concept drift changes the generating
//! process, the stale coefficients start mispredicting, and the residual
//! mean rises — exactly the one-sided change Page–Hinkley detects with O(1)
//! state. Total memory is the rolling window plus `p + 1` coefficients, so
//! the detector stays in the same lightweight class as the paper's method.
//!
//! The fit solves the normal equations with a ridge-stabilised Cholesky
//! factorisation — `p` is tiny (2–8), so a refit is O(window · p²) and is
//! amortised by only refitting every `refit_every` samples.

use std::collections::VecDeque;

use seqdrift_linalg::cholesky::Cholesky;
use seqdrift_linalg::{Matrix, Real};

use crate::page_hinkley::PageHinkley;

/// Configuration for [`ArResidual`].
#[derive(Debug, Clone)]
pub struct ArResidualConfig {
    /// Autoregressive order `p` (how many lagged values feed the predictor).
    pub order: usize,
    /// Rolling-window length the model is fitted on.
    pub window: usize,
    /// Refit cadence in samples (1 = every sample).
    pub refit_every: usize,
    /// Page–Hinkley magnitude tolerance δ on the residual stream.
    pub delta: Real,
    /// Page–Hinkley detection threshold λ.
    pub lambda: Real,
    /// Ridge term added to the normal-equation diagonal for stability.
    pub ridge: Real,
}

impl ArResidualConfig {
    /// Defaults tuned alongside the other extension baselines: AR(3) on a
    /// 200-sample window, refit every 20 samples.
    pub fn new(order: usize, window: usize) -> Self {
        assert!(order >= 1, "AR order must be at least 1");
        assert!(
            window >= 4 * order,
            "window must be at least 4x the AR order"
        );
        ArResidualConfig {
            order,
            window,
            refit_every: 20,
            delta: 0.005,
            lambda: 1.5,
            ridge: 1e-4,
        }
    }

    /// Overrides the Page–Hinkley thresholds.
    pub fn with_thresholds(mut self, delta: Real, lambda: Real) -> Self {
        self.delta = delta;
        self.lambda = lambda;
        self
    }

    /// Overrides the refit cadence.
    pub fn with_refit_every(mut self, every: usize) -> Self {
        assert!(every >= 1);
        self.refit_every = every;
        self
    }
}

/// AR(p)-residual drift detector: least-squares AR fit on a rolling window,
/// Page–Hinkley on the one-step-ahead residuals.
#[derive(Debug, Clone)]
pub struct ArResidual {
    cfg: ArResidualConfig,
    /// Rolling history, most recent at the back.
    history: VecDeque<Real>,
    /// `[intercept, a_1 .. a_p]`; `a_1` multiplies the most recent lag.
    coeffs: Option<Vec<Real>>,
    ph: PageHinkley,
    since_fit: usize,
}

impl ArResidual {
    /// Creates a detector from a configuration.
    pub fn new(cfg: ArResidualConfig) -> Self {
        let ph = PageHinkley::new(cfg.delta, cfg.lambda);
        let history = VecDeque::with_capacity(cfg.window + 1);
        ArResidual {
            cfg,
            history,
            coeffs: None,
            ph,
            since_fit: 0,
        }
    }

    /// The fitted coefficients `[intercept, a_1 .. a_p]`, once enough data
    /// has been seen.
    pub fn coefficients(&self) -> Option<&[Real]> {
        self.coeffs.as_deref()
    }

    /// Current Page–Hinkley statistic on the residual stream.
    pub fn statistic(&self) -> Real {
        self.ph.statistic()
    }

    /// Feeds one observation; returns `true` when residual drift is
    /// detected. Non-finite observations are ignored.
    pub fn push(&mut self, x: Real) -> bool {
        if !x.is_finite() {
            return false;
        }
        let p = self.cfg.order;
        // Residual against the current model before updating history.
        let mut fired = false;
        if let Some(c) = &self.coeffs {
            if self.history.len() >= p {
                let mut pred = c[0];
                for (lag, coef) in c[1..].iter().enumerate() {
                    // lag 0 = most recent value.
                    pred += coef * self.history[self.history.len() - 1 - lag];
                }
                fired = self.ph.push((x - pred).abs());
            }
        }
        self.history.push_back(x);
        while self.history.len() > self.cfg.window {
            self.history.pop_front();
        }
        self.since_fit += 1;
        let warm = self.history.len() >= (2 * p + 8).min(self.cfg.window);
        if warm && (self.coeffs.is_none() || self.since_fit >= self.cfg.refit_every) {
            if let Some(c) = self.fit() {
                self.coeffs = Some(c);
                self.since_fit = 0;
            }
        }
        fired
    }

    /// Resets the detector (model, window, and PH state), e.g. after the
    /// downstream model is rebuilt on the new concept.
    pub fn reset(&mut self) {
        self.history.clear();
        self.coeffs = None;
        self.ph.reset();
        self.since_fit = 0;
    }

    /// Number of `Real` scalars kept resident: rolling window + coefficients
    /// + PH state. Drives the Table 4 style memory comparison.
    pub fn memory_scalars(&self) -> usize {
        self.cfg.window + (self.cfg.order + 1) + 4
    }

    /// Least-squares AR(p) fit with intercept on the rolling window, solved
    /// via ridge-stabilised normal equations. Returns `None` when the
    /// window is too short or the solve fails.
    fn fit(&self) -> Option<Vec<Real>> {
        let p = self.cfg.order;
        let n = self.history.len();
        if n < p + 2 {
            return None;
        }
        let hist: Vec<Real> = self.history.iter().copied().collect();
        let rows = n - p;
        let d = p + 1;
        // Accumulate X^T X and X^T y directly; X rows are [1, x_{t-1}, ..,
        // x_{t-p}] predicting y = x_t.
        let mut xtx = Matrix::zeros(d, d);
        let mut xty = vec![0.0 as Real; d];
        let mut row = vec![0.0 as Real; d];
        for t in p..n {
            row[0] = 1.0;
            for lag in 0..p {
                row[1 + lag] = hist[t - 1 - lag];
            }
            let y = hist[t];
            for i in 0..d {
                xty[i] += row[i] * y;
                for j in 0..d {
                    let v = xtx.get(i, j) + row[i] * row[j];
                    xtx.set(i, j, v);
                }
            }
        }
        // Ridge scaled to the data magnitude keeps near-constant windows
        // solvable without biasing healthy fits.
        let scale = (xtx.get(0, 0) / rows as Real).max(1.0);
        for i in 0..d {
            let v = xtx.get(i, i) + self.cfg.ridge * scale * rows as Real;
            xtx.set(i, i, v);
        }
        let chol = Cholesky::factor(&xtx).ok()?;
        let mut coeffs = vec![0.0 as Real; d];
        chol.solve_into(&xty, &mut coeffs).ok()?;
        coeffs.iter().all(|c| c.is_finite()).then_some(coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    fn detector() -> ArResidual {
        ArResidual::new(ArResidualConfig::new(3, 200).with_thresholds(0.02, 3.0))
    }

    /// Generates an AR(2) process x_t = c + a1 x_{t-1} + a2 x_{t-2} + noise.
    fn ar2(c: Real, a1: Real, a2: Real, noise: Real, n: usize, rng: &mut Rng) -> Vec<Real> {
        let mut out = vec![c, c];
        for t in 2..n {
            let x = c + a1 * out[t - 1] + a2 * out[t - 2] + rng.normal(0.0, noise);
            out.push(x);
        }
        out
    }

    #[test]
    fn stable_on_stationary_ar_process() {
        let mut rng = Rng::seed_from(11);
        let mut det = detector();
        for x in ar2(0.3, 0.5, -0.2, 0.05, 4000, &mut rng) {
            assert!(!det.push(x), "false positive on stationary stream");
        }
    }

    #[test]
    fn recovers_ar2_coefficients() {
        let mut rng = Rng::seed_from(12);
        let mut det = ArResidual::new(ArResidualConfig::new(2, 400).with_thresholds(0.5, 500.0));
        for x in ar2(0.2, 0.6, -0.3, 0.2, 1000, &mut rng) {
            det.push(x);
        }
        let c = det.coefficients().expect("no fit after 1000 samples");
        assert!((c[1] - 0.6).abs() < 0.1, "a1 = {}", c[1]);
        assert!((c[2] + 0.3).abs() < 0.1, "a2 = {}", c[2]);
    }

    #[test]
    fn detects_process_change() {
        let mut rng = Rng::seed_from(13);
        let mut det = detector();
        for x in ar2(0.3, 0.5, -0.2, 0.05, 2000, &mut rng) {
            assert!(!det.push(x));
        }
        // The generating process changes: different level and dynamics.
        let mut delay = None;
        for (i, x) in ar2(1.5, -0.4, 0.1, 0.05, 1200, &mut rng)
            .into_iter()
            .enumerate()
        {
            if det.push(x) {
                delay = Some(i);
                break;
            }
        }
        let d = delay.expect("process change not detected");
        assert!(d < 600, "detection delay {d}");
    }

    #[test]
    fn reset_clears_everything() {
        let mut rng = Rng::seed_from(14);
        let mut det = detector();
        for x in ar2(0.3, 0.5, -0.2, 0.05, 500, &mut rng) {
            det.push(x);
        }
        assert!(det.coefficients().is_some());
        det.reset();
        assert!(det.coefficients().is_none());
        assert_eq!(det.statistic(), 0.0);
    }

    #[test]
    fn non_finite_inputs_are_ignored() {
        let mut rng = Rng::seed_from(15);
        let mut det = detector();
        for x in ar2(0.3, 0.5, -0.2, 0.05, 500, &mut rng) {
            det.push(x);
        }
        let stat = det.statistic();
        for bad in [Real::NAN, Real::INFINITY, Real::NEG_INFINITY] {
            assert!(!det.push(bad));
        }
        assert_eq!(det.statistic(), stat);
    }

    #[test]
    fn memory_footprint_is_window_dominated() {
        let det = ArResidual::new(ArResidualConfig::new(4, 256));
        assert_eq!(det.memory_scalars(), 256 + 5 + 4);
    }
}
