//! Diagonal-covariance Gaussian mixture model estimated from hard cluster
//! assignments.
//!
//! SPLL (Kuncheva 2013) models the reference window as a GMM whose
//! components share one covariance matrix, estimated from the k-means
//! clustering of the window. With 511-dimensional fan spectra a full
//! covariance is singular for any realistic window (235 samples), so —
//! like the reference implementation — we restrict the shared covariance to
//! its diagonal, which keeps the Mahalanobis distance well-defined in any
//! dimension.

use crate::kmeans::KMeans;
use seqdrift_linalg::Real;

/// Gaussian mixture with hard-assignment estimation and one shared diagonal
/// covariance.
#[derive(Debug, Clone)]
pub struct DiagonalGmm {
    /// Component means (`k x dim`).
    pub means: Vec<Vec<Real>>,
    /// Component weights (sum to 1).
    pub weights: Vec<Real>,
    /// Shared diagonal covariance (length `dim`), floored away from zero.
    pub diag_cov: Vec<Real>,
    inv_diag_cov: Vec<Real>,
}

/// Variance floor: dimensions with (near-)zero pooled variance would give
/// infinite Mahalanobis weight to meaningless noise, so they are clamped.
const VAR_FLOOR: Real = 1e-6;

impl DiagonalGmm {
    /// Estimates the mixture from a fitted k-means clustering of `data`.
    ///
    /// Means come from the cluster centroids, weights from cluster sizes,
    /// and the shared covariance is the pooled within-cluster variance per
    /// dimension.
    pub fn from_kmeans(data: &[Vec<Real>], km: &KMeans) -> DiagonalGmm {
        assert!(!data.is_empty(), "gmm: empty data");
        let dim = data[0].len();
        let k = km.k();
        let mut weights = vec![0.0; k];
        for &a in &km.assignments {
            weights[a] += 1.0;
        }
        let n = data.len() as Real;
        for w in &mut weights {
            *w /= n;
        }
        let mut diag_cov = vec![0.0; dim];
        for (x, &a) in data.iter().zip(km.assignments.iter()) {
            for (d, (&xv, &cv)) in x.iter().zip(km.centroids[a].iter()).enumerate() {
                let diff = xv - cv;
                diag_cov[d] += diff * diff;
            }
        }
        for v in &mut diag_cov {
            *v = (*v / n).max(VAR_FLOOR);
        }
        let inv_diag_cov = diag_cov.iter().map(|&v| 1.0 / v).collect();
        DiagonalGmm {
            means: km.centroids.clone(),
            weights,
            diag_cov,
            inv_diag_cov,
        }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.means.len()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.diag_cov.len()
    }

    /// Squared Mahalanobis distance from `x` to component `c` under the
    /// shared diagonal covariance.
    pub fn mahalanobis_sq(&self, c: usize, x: &[Real]) -> Real {
        debug_assert_eq!(x.len(), self.dim());
        let mut s = 0.0;
        for ((&xv, &mv), &iv) in x
            .iter()
            .zip(self.means[c].iter())
            .zip(self.inv_diag_cov.iter())
        {
            let d = xv - mv;
            s += d * d * iv;
        }
        s
    }

    /// Minimum squared Mahalanobis distance over all components — the
    /// per-sample statistic SPLL averages.
    pub fn min_mahalanobis_sq(&self, x: &[Real]) -> Real {
        (0..self.k())
            .map(|c| self.mahalanobis_sq(c, x))
            .fold(Real::INFINITY, Real::min)
    }

    /// Number of stored scalars (memory accounting).
    pub fn memory_scalars(&self) -> usize {
        self.means.iter().map(|m| m.len()).sum::<usize>()
            + self.weights.len()
            + self.diag_cov.len()
            + self.inv_diag_cov.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    fn blobs(seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        let mut data = Vec::new();
        for m in [[0.0, 0.0], [4.0, 4.0]] {
            for _ in 0..100 {
                data.push(vec![rng.normal(m[0], 0.5), rng.normal(m[1], 0.5)]);
            }
        }
        data
    }

    fn fitted(seed: u64) -> (Vec<Vec<Real>>, DiagonalGmm) {
        let data = blobs(seed);
        let mut rng = Rng::seed_from(seed + 1);
        let km = KMeans::fit(&data, 2, 50, &mut rng);
        let gmm = DiagonalGmm::from_kmeans(&data, &km);
        (data, gmm)
    }

    #[test]
    fn weights_sum_to_one() {
        let (_, gmm) = fitted(1);
        let s: Real = gmm.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(gmm.weights.iter().all(|&w| w > 0.3 && w < 0.7));
    }

    #[test]
    fn pooled_variance_matches_blob_variance() {
        let (_, gmm) = fitted(2);
        // Blobs have σ = 0.5 per dimension => variance 0.25.
        for &v in &gmm.diag_cov {
            assert!((v - 0.25).abs() < 0.07, "pooled var {v}");
        }
    }

    #[test]
    fn mahalanobis_zero_at_mean() {
        let (_, gmm) = fitted(3);
        for c in 0..gmm.k() {
            let m = gmm.means[c].clone();
            assert!(gmm.mahalanobis_sq(c, &m) < 1e-9);
        }
    }

    #[test]
    fn min_mahalanobis_small_in_distribution_large_out() {
        let (data, gmm) = fitted(4);
        let mean_in: Real =
            data.iter().map(|x| gmm.min_mahalanobis_sq(x)).sum::<Real>() / data.len() as Real;
        // Under the model, squared Mahalanobis averages ≈ dim = 2.
        assert!((mean_in - 2.0).abs() < 0.8, "mean in-dist {mean_in}");
        let far = vec![10.0, -10.0];
        assert!(gmm.min_mahalanobis_sq(&far) > 50.0);
    }

    #[test]
    fn variance_floor_prevents_infinite_weight() {
        // A constant dimension must not blow up the distance.
        let data: Vec<Vec<Real>> = (0..50).map(|i| vec![i as Real * 0.1, 7.0]).collect();
        let mut rng = Rng::seed_from(5);
        let km = KMeans::fit(&data, 2, 20, &mut rng);
        let gmm = DiagonalGmm::from_kmeans(&data, &km);
        let d = gmm.min_mahalanobis_sq(&[2.0, 7.0]);
        assert!(d.is_finite());
        assert!(gmm.diag_cov[1] >= VAR_FLOOR);
    }

    #[test]
    fn memory_scalars_counts_buffers() {
        let (_, gmm) = fitted(6);
        // 2 means of 2 + 2 weights + 2 cov + 2 inv cov = 10.
        assert_eq!(gmm.memory_scalars(), 10);
    }
}
