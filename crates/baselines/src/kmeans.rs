//! k-means clustering: Lloyd's algorithm with k-means++ seeding, plus a
//! sequential (streaming) variant.
//!
//! Substrates for two places in the paper: SPLL clusters its training window
//! with k-means (§2.2.2), and the proposed method assumes initial samples
//! "can be labeled with a clustering algorithm such as k-means" (§3.2) in
//! the unsupervised setting.

use seqdrift_linalg::{vector, Real, Rng};

/// Result of a batch k-means fit.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids, one `Vec<Real>` of length `dim` per cluster.
    pub centroids: Vec<Vec<Real>>,
    /// Cluster assignment of each training point.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: Real,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

impl KMeans {
    /// Fits `k` clusters to `data` with k-means++ seeding.
    ///
    /// `max_iter` caps Lloyd iterations; convergence is declared when no
    /// assignment changes. Panics if `data` is empty or `k == 0`; if
    /// `k > data.len()`, `k` is clamped to the number of points.
    pub fn fit(data: &[Vec<Real>], k: usize, max_iter: usize, rng: &mut Rng) -> KMeans {
        assert!(!data.is_empty(), "kmeans: empty data");
        assert!(k > 0, "kmeans: k must be > 0");
        let k = k.min(data.len());
        let dim = data[0].len();

        let mut centroids = plus_plus_init(data, k, rng);
        let mut assignments = vec![0usize; data.len()];
        let mut counts = vec![0usize; k];
        let mut iterations = 0;

        for it in 0..max_iter.max(1) {
            iterations = it + 1;
            // Assignment step.
            let mut changed = false;
            for (i, x) in data.iter().enumerate() {
                let a = nearest(&centroids, x).0;
                if assignments[i] != a {
                    assignments[i] = a;
                    changed = true;
                }
            }
            if !changed && it > 0 {
                iterations = it; // previous iteration already converged
                break;
            }
            // Update step.
            for c in centroids.iter_mut() {
                c.fill(0.0);
            }
            counts.fill(0);
            for (i, x) in data.iter().enumerate() {
                let a = assignments[i];
                counts[a] += 1;
                vector::axpy(1.0, x, &mut centroids[a]);
            }
            for (c, &n) in centroids.iter_mut().zip(counts.iter()) {
                if n > 0 {
                    vector::scale(1.0 / n as Real, c);
                }
            }
            // Re-seed any emptied cluster at the point farthest from its
            // centroid (standard empty-cluster repair).
            for c in 0..k {
                if counts[c] == 0 {
                    let far = data
                        .iter()
                        .enumerate()
                        .max_by(|(i, x), (j, y)| {
                            let dx = vector::dist_l2_sq(x, &centroids[assignments[*i]]);
                            let dy = vector::dist_l2_sq(y, &centroids[assignments[*j]]);
                            dx.partial_cmp(&dy).unwrap()
                        })
                        .map(|(i, _)| i)
                        .unwrap();
                    centroids[c].copy_from_slice(&data[far]);
                }
            }
            let _ = dim;
        }

        let inertia = data
            .iter()
            .zip(assignments.iter())
            .map(|(x, &a)| vector::dist_l2_sq(x, &centroids[a]))
            .sum();
        KMeans {
            centroids,
            assignments,
            inertia,
            iterations,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Assigns a new point to its nearest centroid, returning
    /// `(cluster, squared distance)`.
    pub fn assign(&self, x: &[Real]) -> (usize, Real) {
        nearest(&self.centroids, x)
    }
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007): first centre uniform,
/// each next centre drawn with probability proportional to its squared
/// distance from the nearest chosen centre.
pub fn plus_plus_init(data: &[Vec<Real>], k: usize, rng: &mut Rng) -> Vec<Vec<Real>> {
    let mut centroids: Vec<Vec<Real>> = Vec::with_capacity(k);
    let first = rng.below(data.len() as u64) as usize;
    centroids.push(data[first].clone());
    let mut d2: Vec<Real> = data
        .iter()
        .map(|x| vector::dist_l2_sq(x, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let idx = rng
            .weighted_index(&d2)
            // All remaining distances zero => duplicate points; any index is
            // as good as any other.
            .unwrap_or_else(|| rng.below(data.len() as u64) as usize);
        centroids.push(data[idx].clone());
        let newest = centroids.last().unwrap();
        for (slot, x) in d2.iter_mut().zip(data.iter()) {
            let d = vector::dist_l2_sq(x, newest);
            if d < *slot {
                *slot = d;
            }
        }
    }
    centroids
}

fn nearest(centroids: &[Vec<Real>], x: &[Real]) -> (usize, Real) {
    let mut best = 0;
    let mut best_d = Real::INFINITY;
    for (c, cent) in centroids.iter().enumerate() {
        let d = vector::dist_l2_sq(x, cent);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Streaming k-means: centroids update with running means as samples
/// arrive, one at a time, O(k·dim) memory. This is the "very similar to a
/// sequential k-means algorithm" update the paper's `Update_Coord` performs
/// (Algorithm 4).
#[derive(Debug, Clone)]
pub struct SequentialKMeans {
    centroids: Vec<Vec<Real>>,
    counts: Vec<u64>,
}

impl SequentialKMeans {
    /// Starts from the given initial centroids with zero observed counts.
    pub fn from_centroids(centroids: Vec<Vec<Real>>) -> Self {
        let counts = vec![0; centroids.len()];
        SequentialKMeans { centroids, counts }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Current centroids.
    pub fn centroids(&self) -> &[Vec<Real>] {
        &self.centroids
    }

    /// Per-cluster observation counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Assigns `x` to its nearest centroid and updates that centroid with a
    /// running mean (Algorithm 4 lines 2–4). Returns the chosen cluster.
    pub fn update(&mut self, x: &[Real]) -> usize {
        let (label, _) = nearest(&self.centroids, x);
        vector::running_mean_update(&mut self.centroids[label], self.counts[label], x);
        self.counts[label] += 1;
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs(n_per: usize, seed: u64) -> (Vec<Vec<Real>>, Vec<usize>) {
        let mut rng = Rng::seed_from(seed);
        let means = [[0.0, 0.0], [5.0, 5.0], [0.0, 5.0]];
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (c, m) in means.iter().enumerate() {
            for _ in 0..n_per {
                data.push(vec![rng.normal(m[0], 0.3), rng.normal(m[1], 0.3)]);
                labels.push(c);
            }
        }
        (data, labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, labels) = three_blobs(50, 1);
        let mut rng = Rng::seed_from(2);
        let km = KMeans::fit(&data, 3, 50, &mut rng);
        // Clusters should be pure: every pair from the same true blob must
        // share a k-means cluster.
        for c in 0..3 {
            let assigned: Vec<usize> = labels
                .iter()
                .zip(km.assignments.iter())
                .filter(|(l, _)| **l == c)
                .map(|(_, a)| *a)
                .collect();
            let first = assigned[0];
            assert!(
                assigned.iter().all(|&a| a == first),
                "blob {c} split across clusters"
            );
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, _) = three_blobs(40, 3);
        let mut rng = Rng::seed_from(4);
        let k1 = KMeans::fit(&data, 1, 30, &mut rng);
        let k3 = KMeans::fit(&data, 3, 30, &mut rng);
        assert!(
            k3.inertia < k1.inertia * 0.2,
            "{} vs {}",
            k3.inertia,
            k1.inertia
        );
    }

    #[test]
    fn k_clamped_to_data_len() {
        let data = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let mut rng = Rng::seed_from(5);
        let km = KMeans::fit(&data, 10, 10, &mut rng);
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn assign_returns_nearest() {
        let (data, _) = three_blobs(30, 6);
        let mut rng = Rng::seed_from(7);
        let km = KMeans::fit(&data, 3, 30, &mut rng);
        let (c, d) = km.assign(&[5.0, 5.0]);
        assert!(d < 1.0);
        // The centroid for (5,5) blob must be near (5,5).
        assert!(vector::dist_l2(&km.centroids[c], &[5.0, 5.0]) < 0.5);
    }

    #[test]
    fn plus_plus_spreads_centres() {
        let (data, _) = three_blobs(50, 8);
        let mut rng = Rng::seed_from(9);
        let seeds = plus_plus_init(&data, 3, &mut rng);
        // All three seeds should land in distinct blobs with overwhelming
        // probability given blob separation >> blob radius.
        let mut blob_of = |x: &Vec<Real>| -> usize {
            nearest(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![0.0, 5.0]], x).0
        };
        let blobs: Vec<usize> = seeds.iter().map(&mut blob_of).collect();
        let mut uniq = blobs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "seeds {blobs:?} not spread");
    }

    #[test]
    fn handles_duplicate_points() {
        let data = vec![vec![1.0, 1.0]; 20];
        let mut rng = Rng::seed_from(10);
        let km = KMeans::fit(&data, 3, 10, &mut rng);
        assert!(km.inertia < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = three_blobs(30, 11);
        let a = KMeans::fit(&data, 3, 30, &mut Rng::seed_from(12));
        let b = KMeans::fit(&data, 3, 30, &mut Rng::seed_from(12));
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn sequential_kmeans_tracks_blob_means() {
        let (data, _) = three_blobs(100, 13);
        let init = vec![vec![0.5, 0.5], vec![4.5, 4.5], vec![0.5, 4.5]];
        let mut skm = SequentialKMeans::from_centroids(init);
        for x in &data {
            skm.update(x);
        }
        assert!(vector::dist_l2(&skm.centroids()[0], &[0.0, 0.0]) < 0.3);
        assert!(vector::dist_l2(&skm.centroids()[1], &[5.0, 5.0]) < 0.3);
        assert!(vector::dist_l2(&skm.centroids()[2], &[0.0, 5.0]) < 0.3);
        assert_eq!(skm.counts().iter().sum::<u64>(), 300);
    }

    #[test]
    fn sequential_kmeans_update_returns_nearest_label() {
        let init = vec![vec![0.0], vec![10.0]];
        let mut skm = SequentialKMeans::from_centroids(init);
        assert_eq!(skm.update(&[1.0]), 0);
        assert_eq!(skm.update(&[9.0]), 1);
    }
}
