//! ADWIN — ADaptive WINdowing (Bifet & Gavaldà, SDM 2007).
//!
//! Maintains a variable-length window over a real-valued stream and drops
//! its oldest portion whenever two adjacent sub-windows have means that
//! differ by more than a Hoeffding-style bound `eps_cut`. The window is
//! stored as an exponential histogram of buckets (the "ADWIN2" scheme), so
//! memory is O(M·log(n/M)) rather than O(n) — still unbounded growth, which
//! is the §2.2.2 argument against it on MCUs, but efficient enough for the
//! Pi-4-class ablations here.

use crate::{ErrorRateDetector, ErrorRateVerdict};
use seqdrift_linalg::Real;
use std::collections::VecDeque;

/// One bucket of the exponential histogram: `count = 2^level` elements
/// summarised by their sum (mean recoverable, variance bounded by the
/// Bernoulli/bounded-input assumption ADWIN makes).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    sum: f64,
    count: u64,
}

/// The ADWIN change detector over values in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Adwin {
    /// Confidence parameter δ: smaller = fewer false positives, longer
    /// detection delay.
    delta: f64,
    /// Max buckets per level before two merge (M in the paper; 5 is the
    /// reference default).
    max_buckets_per_level: usize,
    /// Buckets ordered oldest -> newest; `levels[i]` holds buckets of
    /// capacity `2^i`.
    levels: Vec<VecDeque<Bucket>>,
    total_sum: f64,
    total_count: u64,
    /// Only check for cuts every `check_period` insertions (reference
    /// implementation optimisation; 1 = check always).
    check_period: u64,
    since_check: u64,
}

impl Default for Adwin {
    fn default() -> Self {
        Adwin::new(0.002)
    }
}

impl Adwin {
    /// Creates an ADWIN with confidence `delta` (reference default 0.002).
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        Adwin {
            delta,
            max_buckets_per_level: 5,
            levels: vec![VecDeque::new()],
            total_sum: 0.0,
            total_count: 0,
            check_period: 4,
            since_check: 0,
        }
    }

    /// Number of elements currently represented in the window.
    pub fn window_len(&self) -> u64 {
        self.total_count
    }

    /// Mean of the current window.
    pub fn mean(&self) -> Real {
        if self.total_count == 0 {
            0.0
        } else {
            (self.total_sum / self.total_count as f64) as Real
        }
    }

    /// Adds a value in `[0, 1]`; returns `true` when the window was cut
    /// (a change was detected at this step).
    ///
    /// Non-finite values are ignored: `clamp` propagates NaN, and a single
    /// NaN folded into `total_sum` would poison every later mean and
    /// Hoeffding bound permanently.
    pub fn add(&mut self, value: Real) -> bool {
        if !value.is_finite() {
            return false;
        }
        let v = f64::from(value).clamp(0.0, 1.0);
        self.levels[0].push_back(Bucket { sum: v, count: 1 });
        self.total_sum += v;
        self.total_count += 1;
        self.compress();
        self.since_check += 1;
        if self.since_check >= self.check_period {
            self.since_check = 0;
            self.try_cut()
        } else {
            false
        }
    }

    /// Merges oldest buckets upward when a level overflows.
    fn compress(&mut self) {
        let mut level = 0;
        loop {
            if self.levels[level].len() <= self.max_buckets_per_level {
                break;
            }
            let a = self.levels[level].pop_front().expect("overflowing level");
            let b = self.levels[level].pop_front().expect("overflowing level");
            if level + 1 == self.levels.len() {
                self.levels.push(VecDeque::new());
            }
            self.levels[level + 1].push_back(Bucket {
                sum: a.sum + b.sum,
                count: a.count + b.count,
            });
            level += 1;
        }
    }

    /// Scans all split points oldest-first, dropping head buckets while the
    /// two-sided mean difference exceeds the Hoeffding bound.
    fn try_cut(&mut self) -> bool {
        let mut cut_any = false;
        // Repeat until no further cut applies (the paper's outer loop).
        loop {
            if self.total_count < 2 {
                return cut_any;
            }
            let n = self.total_count as f64;
            let total_mean = self.total_sum / n;
            // Variance estimate for the bound (bounded inputs): use the
            // Bernoulli-style bound sigma^2 <= mu(1-mu) + small floor.
            let variance = (total_mean * (1.0 - total_mean)).max(1e-8);
            let delta_prime = self.delta / (n.ln().max(1.0));

            let mut head_sum = 0.0;
            let mut head_count = 0u64;
            let mut cut_at: Option<(usize, usize)> = None;

            'scan: for (li, level) in self.levels.iter().enumerate().rev() {
                // Oldest buckets live at the *highest* level front; iterate
                // levels from oldest (largest capacity) to newest.
                for (bi, b) in level.iter().enumerate() {
                    head_sum += b.sum;
                    head_count += b.count;
                    let tail_count = self.total_count - head_count;
                    if head_count == 0 || tail_count == 0 {
                        continue;
                    }
                    let n0 = head_count as f64;
                    let n1 = tail_count as f64;
                    let mu0 = head_sum / n0;
                    let mu1 = (self.total_sum - head_sum) / n1;
                    let m_harm = 1.0 / (1.0 / n0 + 1.0 / n1);
                    let ln_term = (2.0 / delta_prime).ln();
                    let eps_cut =
                        (2.0 / m_harm * variance * ln_term).sqrt() + 2.0 / (3.0 * m_harm) * ln_term;
                    if (mu0 - mu1).abs() > eps_cut {
                        cut_at = Some((li, bi));
                        break 'scan;
                    }
                }
            }

            match cut_at {
                None => return cut_any,
                Some((li, bi)) => {
                    // Drop the oldest portion through (li, bi) inclusive.
                    self.drop_head(li, bi);
                    cut_any = true;
                }
            }
        }
    }

    fn drop_head(&mut self, cut_level: usize, cut_index: usize) {
        // Levels above cut_level are entirely older: drop them whole.
        for li in ((cut_level + 1)..self.levels.len()).rev() {
            while let Some(b) = self.levels[li].pop_front() {
                self.total_sum -= b.sum;
                self.total_count -= b.count;
            }
        }
        // Within the cut level, drop the first cut_index + 1 buckets.
        for _ in 0..=cut_index {
            if let Some(b) = self.levels[cut_level].pop_front() {
                self.total_sum -= b.sum;
                self.total_count -= b.count;
            }
        }
        if self.total_count == 0 {
            self.total_sum = 0.0;
        }
    }
}

impl ErrorRateDetector for Adwin {
    fn push(&mut self, error: bool) -> ErrorRateVerdict {
        if self.add(if error { 1.0 } else { 0.0 }) {
            ErrorRateVerdict::Drift
        } else {
            ErrorRateVerdict::Stable
        }
    }

    fn reset(&mut self) {
        *self = Adwin::new(self.delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    #[test]
    fn window_grows_on_stationary_stream() {
        let mut adwin = Adwin::default();
        let mut rng = Rng::seed_from(1);
        let mut cuts = 0;
        for _ in 0..3000 {
            if adwin.add(if rng.uniform() < 0.2 { 1.0 } else { 0.0 }) {
                cuts += 1;
            }
        }
        assert!(cuts <= 2, "{cuts} spurious cuts");
        assert!(adwin.window_len() > 2000, "window {}", adwin.window_len());
        assert!((adwin.mean() - 0.2).abs() < 0.05);
    }

    #[test]
    fn detects_mean_jump_and_shrinks_window() {
        let mut adwin = Adwin::default();
        let mut rng = Rng::seed_from(2);
        for _ in 0..2000 {
            adwin.add(if rng.uniform() < 0.1 { 1.0 } else { 0.0 });
        }
        let before = adwin.window_len();
        let mut detected_at = None;
        for i in 0..2000 {
            if adwin.add(if rng.uniform() < 0.6 { 1.0 } else { 0.0 }) && detected_at.is_none() {
                detected_at = Some(i);
            }
        }
        let d = detected_at.expect("jump not detected");
        assert!(d < 300, "detection delay {d}");
        assert!(adwin.window_len() < before + 2000);
        assert!((adwin.mean() - 0.6).abs() < 0.1);
    }

    #[test]
    fn memory_is_logarithmic() {
        let mut adwin = Adwin::default();
        for i in 0..50_000u64 {
            adwin.add((i % 2) as Real);
        }
        let buckets: usize = adwin.levels.iter().map(|l| l.len()).sum();
        assert!(buckets < 200, "{buckets} buckets for 50k elements");
    }

    #[test]
    fn smaller_delta_is_more_conservative() {
        let run = |delta: f64, seed: u64| -> usize {
            let mut adwin = Adwin::new(delta);
            let mut rng = Rng::seed_from(seed);
            let mut cuts = 0;
            for i in 0..4000 {
                let p = if i < 2000 { 0.1 } else { 0.25 };
                if adwin.add(if rng.uniform() < p { 1.0 } else { 0.0 }) {
                    cuts += 1;
                }
            }
            cuts
        };
        let loose: usize = (0..5).map(|s| run(0.2, s)).sum();
        let tight: usize = (0..5).map(|s| run(1e-4, s)).sum();
        assert!(loose >= tight, "loose {loose} < tight {tight}");
    }

    #[test]
    fn error_rate_detector_interface() {
        let mut adwin = Adwin::default();
        let mut rng = Rng::seed_from(5);
        for _ in 0..1500 {
            adwin.push(rng.uniform() < 0.05);
        }
        let mut saw_drift = false;
        for _ in 0..1500 {
            if adwin.push(rng.uniform() < 0.7) == ErrorRateVerdict::Drift {
                saw_drift = true;
                break;
            }
        }
        assert!(saw_drift);
        adwin.reset();
        assert_eq!(adwin.window_len(), 0);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        Adwin::new(0.0);
    }

    #[test]
    fn non_finite_values_are_ignored_and_detection_survives() {
        let mut adwin = Adwin::default();
        let mut rng = Rng::seed_from(6);
        for _ in 0..1500 {
            adwin.add(if rng.uniform() < 0.1 { 1.0 } else { 0.0 });
        }
        let (len, mean) = (adwin.window_len(), adwin.mean());
        for bad in [Real::NAN, Real::INFINITY, Real::NEG_INFINITY] {
            assert!(!adwin.add(bad));
        }
        // A poisoned sum would make the mean NaN; the guard keeps state
        // untouched instead.
        assert_eq!(adwin.window_len(), len);
        assert_eq!(adwin.mean(), mean);
        let mut saw_cut = false;
        for _ in 0..1500 {
            saw_cut |= adwin.add(if rng.uniform() < 0.7 { 1.0 } else { 0.0 });
        }
        assert!(saw_cut, "jump after NaN burst never detected");
    }
}
