//! Two-sided CUSUM (cumulative sum) change detector (Page 1954).
//!
//! Accumulates standardised deviations from a reference mean in both
//! directions and flags a change when either side exceeds a threshold.
//! O(1) state; extension baseline for watching scalar statistics such as
//! anomaly scores or centroid distances.

use seqdrift_linalg::Real;

/// Which side of a two-sided CUSUM fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CusumSide {
    /// Mean increased.
    Up,
    /// Mean decreased.
    Down,
}

/// Two-sided CUSUM with a fixed reference mean.
#[derive(Debug, Clone)]
pub struct Cusum {
    /// Reference (in-control) mean.
    target: Real,
    /// Slack per observation: deviations below `k` do not accumulate.
    k: Real,
    /// Decision threshold `h`.
    h: Real,
    up: Real,
    down: Real,
    n: u64,
}

impl Cusum {
    /// Creates a CUSUM watching for shifts away from `target`; `k` is the
    /// allowance (often half the shift you care about), `h` the decision
    /// threshold.
    pub fn new(target: Real, k: Real, h: Real) -> Self {
        assert!(h > 0.0, "threshold must be positive");
        assert!(k >= 0.0, "allowance must be non-negative");
        Cusum {
            target,
            k,
            h,
            up: 0.0,
            down: 0.0,
            n: 0,
        }
    }

    /// Observations consumed since the last reset.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current (up, down) cumulative statistics.
    pub fn statistics(&self) -> (Real, Real) {
        (self.up, self.down)
    }

    /// Feeds one observation; returns which side (if any) crossed the
    /// threshold.
    ///
    /// Non-finite observations are ignored: `NaN.max(0.0)` evaluates to
    /// `0.0`, so a single NaN would silently *reset* both accumulators and
    /// mask an in-progress shift.
    pub fn push(&mut self, x: Real) -> Option<CusumSide> {
        if !x.is_finite() {
            return None;
        }
        self.n += 1;
        let dev = x - self.target;
        self.up = (self.up + dev - self.k).max(0.0);
        self.down = (self.down - dev - self.k).max(0.0);
        if self.up > self.h {
            Some(CusumSide::Up)
        } else if self.down > self.h {
            Some(CusumSide::Down)
        } else {
            None
        }
    }

    /// Resets the accumulators (keeps the configuration).
    pub fn reset(&mut self) {
        self.up = 0.0;
        self.down = 0.0;
        self.n = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    #[test]
    fn stable_at_target() {
        let mut c = Cusum::new(1.0, 0.25, 8.0);
        let mut rng = Rng::seed_from(1);
        for _ in 0..5000 {
            assert_eq!(c.push(rng.normal(1.0, 0.3)), None);
        }
    }

    #[test]
    fn detects_upward_shift() {
        let mut c = Cusum::new(1.0, 0.25, 8.0);
        let mut rng = Rng::seed_from(2);
        for _ in 0..500 {
            c.push(rng.normal(1.0, 0.3));
        }
        let mut hit = None;
        for i in 0..500 {
            if let Some(side) = c.push(rng.normal(2.0, 0.3)) {
                hit = Some((i, side));
                break;
            }
        }
        let (delay, side) = hit.expect("shift not detected");
        assert_eq!(side, CusumSide::Up);
        assert!(delay < 50, "delay {delay}");
    }

    #[test]
    fn detects_downward_shift() {
        let mut c = Cusum::new(1.0, 0.25, 8.0);
        let mut rng = Rng::seed_from(3);
        for _ in 0..500 {
            c.push(rng.normal(1.0, 0.3));
        }
        let mut side = None;
        for _ in 0..500 {
            if let Some(s) = c.push(rng.normal(0.0, 0.3)) {
                side = Some(s);
                break;
            }
        }
        assert_eq!(side, Some(CusumSide::Down));
    }

    #[test]
    fn allowance_suppresses_small_shifts() {
        // Shift of 0.1 with allowance 0.5 should not fire.
        let mut c = Cusum::new(1.0, 0.5, 8.0);
        let mut rng = Rng::seed_from(4);
        for _ in 0..5000 {
            assert_eq!(c.push(rng.normal(1.1, 0.1)), None);
        }
    }

    #[test]
    fn non_finite_values_do_not_reset_accumulators() {
        let mut c = Cusum::new(0.0, 0.0, 100.0);
        c.push(3.0);
        c.push(3.0);
        let stats = c.statistics();
        assert!(stats.0 > 0.0);
        for bad in [Real::NAN, Real::INFINITY, Real::NEG_INFINITY] {
            assert_eq!(c.push(bad), None);
        }
        // An unguarded NaN zeroes both sides via `max(0.0)`, silently
        // masking the in-progress shift; state must be untouched instead.
        assert_eq!(c.statistics(), stats);
        assert_eq!(c.count(), 2);
        for _ in 0..40 {
            c.push(3.0);
        }
        assert_eq!(c.push(3.0), Some(CusumSide::Up));
    }

    #[test]
    fn reset_clears_accumulators() {
        let mut c = Cusum::new(0.0, 0.0, 5.0);
        c.push(3.0);
        c.push(3.0);
        assert!(c.statistics().0 > 0.0);
        c.reset();
        assert_eq!(c.statistics(), (0.0, 0.0));
        assert_eq!(c.count(), 0);
    }
}
