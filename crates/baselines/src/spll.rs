//! SPLL — Semi-Parametric Log-Likelihood change detection
//! (Kuncheva, IEEE TKDE 2013).
//!
//! SPLL compares two consecutive windows W1 (reference) and W2 (current):
//! W1 is clustered with k-means and modelled as a Gaussian mixture with a
//! shared (here: diagonal) covariance; the statistic for W2 is the mean,
//! over its samples, of the minimum squared Mahalanobis distance to any
//! component — the negative log-likelihood up to constants. Under no change
//! the statistic concentrates near its W1 value; drift moves it away in
//! either direction (new regions score high; collapse onto one component
//! scores low), so the test is two-sided.
//!
//! This is the *sliding* formulation of the original paper: when a batch
//! completes, it is scored against the current reference model and then
//! **becomes** the next reference (k-means re-runs every batch). That
//! per-batch clustering is exactly why the paper's Table 5 shows SPLL as by
//! far the slowest method, and the two retained windows are why Table 4
//! shows it as the most memory-hungry.
//!
//! The detection threshold is calibrated empirically: the per-sample
//! statistic distribution is measured on the reference window and the batch
//! mean is compared against `mu ± z·sigma/sqrt(ν)` (CLT bound), mirroring
//! how published SPLL implementations choose their cut-off when the
//! chi-square approximation is inapplicable (the min over components breaks
//! exact chi-squaredness).

use crate::gmm::DiagonalGmm;
use crate::kmeans::KMeans;
use crate::{BatchDriftDetector, BatchVerdict};
use seqdrift_linalg::{stats::Welford, Real, Rng};

/// Configuration for the [`Spll`] detector.
#[derive(Debug, Clone)]
pub struct SpllConfig {
    /// Number of k-means clusters for the reference model (Kuncheva uses a
    /// small constant; 3 by default).
    pub clusters: usize,
    /// Batch size `ν` (paper: 480 for NSL-KDD, 235 for fan).
    pub batch_size: usize,
    /// Two-sided z-score multiplier for the CLT threshold.
    pub z: Real,
    /// Lloyd iteration cap for each k-means fit.
    pub max_kmeans_iter: usize,
    /// Seed for k-means initialisation.
    pub seed: u64,
}

impl Default for SpllConfig {
    fn default() -> Self {
        SpllConfig {
            clusters: 3,
            batch_size: 480,
            z: 4.0,
            max_kmeans_iter: 100,
            seed: 0x5011_AB1E,
        }
    }
}

/// The SPLL drift detector (sliding two-window formulation).
#[derive(Debug, Clone)]
pub struct Spll {
    cfg: SpllConfig,
    rng: Rng,
    gmm: DiagonalGmm,
    dim: usize,
    /// Reference-window mean of the per-sample statistic.
    mu0: Real,
    /// Reference-window std of the per-sample statistic.
    sigma0: Real,
    /// Current batch buffer W2 (stored samples — Table 4's memory cost,
    /// together with the retained reference window).
    buffer: Vec<Vec<Real>>,
    last_statistic: Option<Real>,
}

impl Spll {
    /// Fits the initial reference model on `train`.
    pub fn fit(train: &[Vec<Real>], cfg: &SpllConfig) -> Spll {
        assert!(!train.is_empty(), "spll: empty training window");
        let mut rng = Rng::seed_from(cfg.seed);
        let (gmm, mu0, sigma0) = Self::reference_model(train, cfg, &mut rng);
        Spll {
            dim: train[0].len(),
            gmm,
            mu0,
            sigma0,
            buffer: Vec::with_capacity(cfg.batch_size),
            last_statistic: None,
            cfg: cfg.clone(),
            rng,
        }
    }

    /// Clusters a window, estimates the mixture, and calibrates the
    /// per-sample statistic moments.
    fn reference_model(
        window: &[Vec<Real>],
        cfg: &SpllConfig,
        rng: &mut Rng,
    ) -> (DiagonalGmm, Real, Real) {
        let km = KMeans::fit(window, cfg.clusters, cfg.max_kmeans_iter, rng);
        let gmm = DiagonalGmm::from_kmeans(window, &km);
        let mut w = Welford::new();
        for x in window {
            w.push(gmm.min_mahalanobis_sq(x));
        }
        (gmm, w.mean(), w.std().max(1e-6))
    }

    /// The current reference mixture model.
    pub fn gmm(&self) -> &DiagonalGmm {
        &self.gmm
    }

    /// Reference-window mean of the per-sample statistic.
    pub fn mu0(&self) -> Real {
        self.mu0
    }

    /// Statistic of the most recently completed batch.
    pub fn last_statistic(&self) -> Option<Real> {
        self.last_statistic
    }

    /// The (lower, upper) acceptance interval for a batch mean.
    pub fn acceptance_interval(&self) -> (Real, Real) {
        let half_width = self.cfg.z * self.sigma0 / (self.cfg.batch_size as Real).sqrt();
        (self.mu0 - half_width, self.mu0 + half_width)
    }
}

impl BatchDriftDetector for Spll {
    fn batch_size(&self) -> usize {
        self.cfg.batch_size
    }

    fn push(&mut self, x: &[Real]) -> BatchVerdict {
        debug_assert_eq!(x.len(), self.dim);
        self.buffer.push(x.to_vec());
        if self.buffer.len() < self.cfg.batch_size {
            return BatchVerdict::Pending;
        }
        // Score W2 against the current reference.
        let stat: Real = self
            .buffer
            .iter()
            .map(|s| self.gmm.min_mahalanobis_sq(s))
            .sum::<Real>()
            / self.buffer.len() as Real;
        self.last_statistic = Some(stat);
        let (lo, hi) = self.acceptance_interval();
        let verdict = if stat < lo || stat > hi {
            BatchVerdict::Drift
        } else {
            BatchVerdict::NoDrift
        };
        // Slide: this batch becomes the next reference window (k-means
        // re-runs here, every batch — SPLL's dominant cost).
        let (gmm, mu0, sigma0) = Self::reference_model(&self.buffer, &self.cfg, &mut self.rng);
        self.gmm = gmm;
        self.mu0 = mu0;
        self.sigma0 = sigma0;
        self.buffer.clear();
        verdict
    }

    fn reset_window(&mut self) {
        self.buffer.clear();
    }

    fn memory_scalars(&self) -> usize {
        // The sliding formulation retains the reference window (for
        // refitting and the two-sided W2->W1 comparison) plus the current
        // batch, matching the ~2-window footprint of the paper's Table 4.
        2 * self.cfg.batch_size * self.dim + self.gmm.memory_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, dim: usize, centers: &[Real], spread: Real, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|i| {
                let c = centers[i % centers.len()];
                let mut x = vec![0.0; dim];
                rng.fill_normal(&mut x, c, spread);
                x
            })
            .collect()
    }

    fn cfg(batch: usize) -> SpllConfig {
        SpllConfig {
            clusters: 3,
            batch_size: batch,
            z: 4.0,
            max_kmeans_iter: 50,
            seed: 99,
        }
    }

    #[test]
    fn calibration_statistics_are_sane() {
        let train = blobs(300, 5, &[0.0, 1.0, 2.0], 0.2, 1);
        let spll = Spll::fit(&train, &cfg(60));
        // Per-sample min-Mahalanobis over a 5-dim diagonal model averages
        // below dim (the min over 3 components pulls it down).
        assert!(
            spll.mu0() > 0.0 && spll.mu0() < 10.0,
            "mu0 = {}",
            spll.mu0()
        );
        let (lo, hi) = spll.acceptance_interval();
        assert!(lo < spll.mu0() && spll.mu0() < hi);
    }

    #[test]
    fn no_drift_on_stationary_stream() {
        let train = blobs(400, 5, &[0.0, 1.0, 2.0], 0.2, 2);
        let mut spll = Spll::fit(&train, &cfg(80));
        let test = blobs(800, 5, &[0.0, 1.0, 2.0], 0.2, 3);
        let mut drift = 0;
        let mut batches = 0;
        for x in &test {
            match spll.push(x) {
                BatchVerdict::Drift => {
                    drift += 1;
                    batches += 1;
                }
                BatchVerdict::NoDrift => batches += 1,
                BatchVerdict::Pending => {}
            }
        }
        assert_eq!(batches, 10);
        assert!(drift <= 1, "{drift}/10 false alarms");
    }

    #[test]
    fn detects_mean_shift_then_adapts() {
        let train = blobs(400, 5, &[0.0, 1.0, 2.0], 0.2, 4);
        let mut spll = Spll::fit(&train, &cfg(80));
        // First post-shift batch fires; after the reference slides onto the
        // new concept, subsequent batches are quiet.
        let test = blobs(240, 5, &[4.0], 0.2, 5);
        let mut verdicts = Vec::new();
        for x in &test {
            let v = spll.push(x);
            if v != BatchVerdict::Pending {
                verdicts.push(v);
            }
        }
        assert_eq!(verdicts[0], BatchVerdict::Drift);
        assert!(spll.last_statistic().is_some());
        assert_eq!(
            verdicts[2],
            BatchVerdict::NoDrift,
            "reference did not slide"
        );
    }

    #[test]
    fn detects_variance_collapse_two_sided() {
        // All test points exactly at one component mean: statistic goes far
        // *below* mu0, which the two-sided test must catch.
        let train = blobs(400, 4, &[0.0, 2.0], 0.5, 6);
        let mut spll = Spll::fit(&train, &cfg(80));
        let center = spll.gmm().means[0].clone();
        let mut verdict = BatchVerdict::Pending;
        let mut stat = 0.0;
        for _ in 0..80 {
            let v = spll.push(&center);
            if v != BatchVerdict::Pending {
                verdict = v;
                stat = spll.last_statistic().unwrap();
            }
        }
        assert_eq!(verdict, BatchVerdict::Drift);
        assert!(stat < 1.0, "collapse statistic {stat} not small");
    }

    #[test]
    fn pending_until_batch_full() {
        let train = blobs(200, 3, &[0.0, 1.0], 0.3, 7);
        let mut spll = Spll::fit(&train, &cfg(50));
        for x in blobs(49, 3, &[0.0, 1.0], 0.3, 8) {
            assert_eq!(spll.push(&x), BatchVerdict::Pending);
        }
    }

    #[test]
    fn memory_accounts_for_two_windows() {
        let dim = 50;
        let train = blobs(300, dim, &[0.0, 1.0, 2.0], 0.3, 9);
        let spll = Spll::fit(&train, &cfg(100));
        assert!(spll.memory_scalars() >= 2 * 100 * dim);
    }

    #[test]
    fn reset_window_discards_partial_batch() {
        let train = blobs(200, 3, &[0.0, 1.0], 0.3, 10);
        let mut spll = Spll::fit(&train, &cfg(20));
        for x in blobs(10, 3, &[0.0], 0.3, 11) {
            spll.push(&x);
        }
        spll.reset_window();
        let mut verdicts = 0;
        for x in blobs(20, 3, &[0.0, 1.0], 0.3, 12) {
            if spll.push(&x) != BatchVerdict::Pending {
                verdicts += 1;
            }
        }
        assert_eq!(verdicts, 1);
    }
}
