//! DDM — Drift Detection Method (Gama, Medas, Castillo & Rodrigues, 2004).
//!
//! Monitors the running error rate `p_i` of a classifier over a stream of
//! labelled outcomes. With `s_i = sqrt(p_i (1 - p_i) / i)`, the method
//! tracks the minimum of `p + s` seen so far and raises:
//!
//! * **warning** when `p_i + s_i >= p_min + 2 s_min` — start collecting data
//!   for a replacement model;
//! * **drift** when `p_i + s_i >= p_min + 3 s_min` — replace the model and
//!   reset all statistics.
//!
//! DDM needs ground-truth labels at run time, which is exactly why §2.2.2
//! of the paper rules this family out for resource-limited edge devices;
//! it is included here as the error-rate baseline for extension ablations.

use crate::{ErrorRateDetector, ErrorRateVerdict};
use seqdrift_linalg::Real;

/// The DDM error-rate drift detector.
#[derive(Debug, Clone)]
pub struct Ddm {
    n: u64,
    errors: u64,
    p_min: Real,
    s_min: Real,
    min_samples: u64,
    warn_level: Real,
    drift_level: Real,
}

impl Default for Ddm {
    fn default() -> Self {
        Ddm::new(30, 2.0, 3.0)
    }
}

impl Ddm {
    /// Creates a DDM.
    ///
    /// `min_samples` observations are required before any verdict (the
    /// binomial approximation is unreliable earlier); `warn_level` /
    /// `drift_level` are the sigma multipliers (canonically 2 and 3).
    pub fn new(min_samples: u64, warn_level: Real, drift_level: Real) -> Self {
        assert!(drift_level >= warn_level, "drift level below warning level");
        Ddm {
            n: 0,
            errors: 0,
            p_min: Real::INFINITY,
            s_min: Real::INFINITY,
            min_samples,
            warn_level,
            drift_level,
        }
    }

    /// Current running error rate.
    pub fn error_rate(&self) -> Real {
        if self.n == 0 {
            0.0
        } else {
            self.errors as Real / self.n as Real
        }
    }

    /// Observations consumed since the last reset.
    pub fn count(&self) -> u64 {
        self.n
    }
}

impl ErrorRateDetector for Ddm {
    // Input is a bool, so DDM is immune to the NaN/Inf poisoning the
    // scalar-stream baselines guard against; all internal statistics are
    // ratios of counters and stay finite by construction.
    fn push(&mut self, error: bool) -> ErrorRateVerdict {
        self.n += 1;
        if error {
            self.errors += 1;
        }
        if self.n < self.min_samples {
            return ErrorRateVerdict::Stable;
        }
        let p = self.error_rate();
        let s = (p * (1.0 - p) / self.n as Real).sqrt();
        // Guard p > 0: a lucky error-free opening window would otherwise
        // pin (p_min, s_min) = (0, 0) and the very first error would fire a
        // spurious drift.
        if p > 0.0 && p + s < self.p_min + self.s_min {
            self.p_min = p;
            self.s_min = s;
        }
        if !self.p_min.is_finite() {
            return ErrorRateVerdict::Stable;
        }
        let level = p + s;
        if level >= self.p_min + self.drift_level * self.s_min {
            ErrorRateVerdict::Drift
        } else if level >= self.p_min + self.warn_level * self.s_min {
            ErrorRateVerdict::Warning
        } else {
            ErrorRateVerdict::Stable
        }
    }

    fn reset(&mut self) {
        let (min_samples, warn, drift) = (self.min_samples, self.warn_level, self.drift_level);
        *self = Ddm::new(min_samples, warn, drift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    /// Feeds Bernoulli(p) errors for `n` steps, returning the first step at
    /// which each verdict appeared.
    fn run(
        ddm: &mut Ddm,
        rng: &mut Rng,
        p: Real,
        n: usize,
        start_step: usize,
    ) -> (Option<usize>, Option<usize>) {
        let mut first_warn = None;
        let mut first_drift = None;
        for i in 0..n {
            let v = ddm.push(rng.uniform() < p);
            let step = start_step + i;
            if v == ErrorRateVerdict::Warning && first_warn.is_none() {
                first_warn = Some(step);
            }
            if v == ErrorRateVerdict::Drift && first_drift.is_none() {
                first_drift = Some(step);
                break;
            }
        }
        (first_warn, first_drift)
    }

    /// Time-to-first-drift on a stationary Bernoulli(p) stream (None if the
    /// detector never fires within `horizon`).
    fn time_to_fire(p: Real, horizon: usize, seed: u64) -> Option<usize> {
        let mut ddm = Ddm::default();
        let mut rng = Rng::seed_from(seed);
        run(&mut ddm, &mut rng, p, horizon, 0).1
    }

    #[test]
    fn detection_is_much_faster_than_false_alarms() {
        // DDM's well-documented weakness is a nonzero false-alarm rate on
        // long stationary streams (the running minimum keeps tightening the
        // drift level). Its operating characteristic is therefore relative:
        // time-to-detection after a genuine jump must be far shorter than
        // time-to-false-alarm on in-control data. Check medians over seeds.
        let mut fp_times = Vec::new();
        let mut det_delays = Vec::new();
        for seed in 0..9 {
            fp_times.push(time_to_fire(0.05, 2000, seed).unwrap_or(2000));
            // Jump stream: 200 in-control samples, then error rate 0.5.
            let mut ddm = Ddm::default();
            let mut rng = Rng::seed_from(1000 + seed);
            let (_, pre) = run(&mut ddm, &mut rng, 0.05, 200, 0);
            if pre.is_some() {
                continue; // false alarm before the jump: not a detection sample
            }
            if let (_, Some(d)) = run(&mut ddm, &mut rng, 0.5, 1000, 200) {
                det_delays.push(d - 200);
            }
        }
        fp_times.sort_unstable();
        det_delays.sort_unstable();
        assert!(!det_delays.is_empty(), "jump never detected on any seed");
        let med_fp = fp_times[fp_times.len() / 2];
        let med_det = det_delays[det_delays.len() / 2];
        assert!(med_det < 100, "median detection delay {med_det}");
        assert!(
            med_fp > 4 * med_det,
            "false alarms (median {med_fp}) nearly as fast as detections (median {med_det})"
        );
    }

    #[test]
    fn detects_error_rate_jump_with_warning_first() {
        // Find a seed with a clean pre-jump phase, then require
        // warning <= drift ordering.
        for seed in 0..20 {
            let mut ddm = Ddm::default();
            let mut rng = Rng::seed_from(seed);
            let (_, pre) = run(&mut ddm, &mut rng, 0.05, 200, 0);
            if pre.is_some() {
                continue;
            }
            let (warn, drift) = run(&mut ddm, &mut rng, 0.5, 1000, 200);
            let d = drift.expect("no drift after a 10x error-rate jump");
            if let Some(w) = warn {
                assert!(w <= d, "warning {w} after drift {d}");
            }
            return;
        }
        panic!("every seed false-alarmed in 200 in-control samples");
    }

    #[test]
    fn warning_precedes_drift_on_gradual_increase() {
        let mut ddm = Ddm::default();
        let mut rng = Rng::seed_from(3);
        let mut first_warn = None;
        let mut first_drift = None;
        for i in 0..4000 {
            let p = 0.05 + 0.25 * (i as Real / 4000.0);
            match ddm.push(rng.uniform() < p) {
                ErrorRateVerdict::Warning if first_warn.is_none() => first_warn = Some(i),
                ErrorRateVerdict::Drift if first_drift.is_none() => {
                    first_drift = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let (w, d) = (first_warn.unwrap(), first_drift.unwrap());
        assert!(w < d, "warning {w} not before drift {d}");
    }

    #[test]
    fn no_verdict_before_min_samples() {
        let mut ddm = Ddm::new(50, 2.0, 3.0);
        for _ in 0..49 {
            assert_eq!(ddm.push(true), ErrorRateVerdict::Stable);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ddm = Ddm::default();
        let mut rng = Rng::seed_from(4);
        run(&mut ddm, &mut rng, 0.05, 500, 0);
        run(&mut ddm, &mut rng, 0.6, 500, 500);
        ddm.reset();
        assert_eq!(ddm.count(), 0);
        assert_eq!(ddm.error_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "drift level")]
    fn invalid_levels_panic() {
        Ddm::new(30, 3.0, 2.0);
    }
}
