#![warn(missing_docs)]

//! # seqdrift-baselines
//!
//! The concept-drift detectors the paper compares against, plus the
//! clustering substrates they need — all implemented from scratch:
//!
//! * [`quanttree`] — Quant Tree (Boracchi et al., ICML 2018): histogram
//!   change detection with a distribution-free Monte-Carlo threshold.
//!   Batch-based; the paper's method 3.
//! * [`spll`] — SPLL (Kuncheva, TKDE 2013): semi-parametric log-likelihood
//!   change detection over a k-means/GMM model. Batch-based; method 4.
//! * [`ddm`] / [`adwin`] — the error-rate-based family discussed in §2.2.2
//!   (DDM, Gama et al. 2004; ADWIN, Bifet & Gavaldà 2007). These need
//!   labelled data, which is why the paper rules them out for edge devices;
//!   they are provided for completeness and used in the extension ablations.
//! * [`page_hinkley`] / [`cusum`] — classic sequential change detectors on
//!   univariate statistics, extension baselines.
//! * [`ar`] — AR(p)-residual detector (cf. arXiv 2203.04769): least-squares
//!   autoregressive fit on a rolling window with Page–Hinkley on the
//!   one-step-ahead residuals; the modern lightweight baseline row.
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding and a sequential
//!   (streaming) variant; substrate for SPLL and for unsupervised labelling
//!   of initial training data (§3.2).
//! * [`gmm`] — diagonal-covariance Gaussian mixture estimation used by SPLL.
//!
//! ## Detector interfaces
//!
//! Batch detectors ([`BatchDriftDetector`]) buffer `batch_size` samples and
//! emit one verdict per full batch — this buffering is exactly the memory
//! cost the paper's Table 4 charges them for, and
//! [`BatchDriftDetector::memory_scalars`] reports it. Streaming detectors
//! ([`ErrorRateDetector`]) consume one boolean prediction-error per sample.
//!
//! ```
//! use seqdrift_baselines::quanttree::{QuantTree, QuantTreeConfig};
//! use seqdrift_baselines::{BatchDriftDetector, BatchVerdict};
//! use seqdrift_linalg::{Real, Rng};
//!
//! let mut rng = Rng::seed_from(1);
//! let train: Vec<Vec<Real>> = (0..300).map(|_| {
//!     let mut x = vec![0.0; 4];
//!     rng.fill_uniform(&mut x, 0.0, 1.0);
//!     x
//! }).collect();
//! let cfg = QuantTreeConfig { bins: 8, batch_size: 64, alpha: 0.01, mc_reps: 200, seed: 2 };
//! let mut qt = QuantTree::fit(&train, &cfg);
//!
//! // A shifted batch triggers a drift verdict when it completes.
//! let mut verdict = BatchVerdict::Pending;
//! for _ in 0..64 {
//!     let mut x = vec![0.0; 4];
//!     rng.fill_uniform(&mut x, 0.6, 1.6);
//!     verdict = qt.push(&x);
//! }
//! assert_eq!(verdict, BatchVerdict::Drift);
//! ```

pub mod adwin;
pub mod ar;
pub mod cusum;
pub mod ddm;
pub mod gmm;
pub mod kmeans;
pub mod page_hinkley;
pub mod quanttree;
pub mod spll;

pub use adwin::Adwin;
pub use ar::{ArResidual, ArResidualConfig};
pub use cusum::Cusum;
pub use ddm::Ddm;
pub use gmm::DiagonalGmm;
pub use kmeans::{KMeans, SequentialKMeans};
pub use page_hinkley::PageHinkley;
pub use quanttree::QuantTree;
pub use spll::Spll;

use seqdrift_linalg::Real;

/// Outcome of feeding one sample to a batch detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchVerdict {
    /// The batch buffer is still filling.
    Pending,
    /// A full batch was evaluated: no drift.
    NoDrift,
    /// A full batch was evaluated: drift detected.
    Drift,
}

/// A distribution-based detector that evaluates fixed-size batches
/// (Quant Tree, SPLL).
pub trait BatchDriftDetector {
    /// Number of samples buffered before each evaluation.
    fn batch_size(&self) -> usize;

    /// Feeds one sample; returns `Drift`/`NoDrift` when this sample
    /// completes a batch, `Pending` otherwise.
    fn push(&mut self, x: &[Real]) -> BatchVerdict;

    /// Clears the partially-filled batch buffer (used after a detected
    /// drift once the model is rebuilt).
    fn reset_window(&mut self);

    /// Number of `Real` scalars this detector keeps resident — the batch
    /// buffer plus model state. Drives the Table 4 memory comparison.
    fn memory_scalars(&self) -> usize;
}

/// A streaming detector over a binary error signal (DDM-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorRateVerdict {
    /// In-control: keep using the current model.
    Stable,
    /// Error rate elevated: start preparing a replacement model.
    Warning,
    /// Drift confirmed: replace the model.
    Drift,
}

/// A detector consuming one prediction-error bit per sample.
pub trait ErrorRateDetector {
    /// Feeds one observation (`true` = the model misclassified the sample).
    fn push(&mut self, error: bool) -> ErrorRateVerdict;

    /// Resets all internal statistics (after model replacement).
    fn reset(&mut self);
}
