//! Page–Hinkley test: sequential detection of an increase in the mean of a
//! univariate stream (Page 1954; the streaming form popularised by Gama's
//! drift-adaptation survey, which the paper cites as [8]).
//!
//! Extension baseline: can watch any scalar statistic — e.g. the anomaly
//! score of the discriminative model — with O(1) state.

use seqdrift_linalg::Real;

/// Page–Hinkley change detector (one-sided: detects mean increases).
#[derive(Debug, Clone)]
pub struct PageHinkley {
    /// Magnitude tolerance δ: deviations below this do not accumulate.
    delta: Real,
    /// Detection threshold λ on the accumulated deviation.
    lambda: Real,
    /// Optional forgetting of the running mean (1.0 = plain mean).
    alpha: Real,
    n: u64,
    mean: Real,
    cumulative: Real,
    minimum: Real,
}

impl PageHinkley {
    /// Creates a detector with tolerance `delta` and threshold `lambda`.
    pub fn new(delta: Real, lambda: Real) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        PageHinkley {
            delta,
            lambda,
            alpha: 1.0,
            n: 0,
            mean: 0.0,
            cumulative: 0.0,
            minimum: 0.0,
        }
    }

    /// Sets the running-mean forgetting factor (`(0, 1]`, 1 = no
    /// forgetting).
    pub fn with_alpha(mut self, alpha: Real) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        self.alpha = alpha;
        self
    }

    /// Observations consumed since the last reset.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current PH statistic (accumulated deviation minus its minimum).
    pub fn statistic(&self) -> Real {
        self.cumulative - self.minimum
    }

    /// Feeds one observation; returns `true` when a change is detected.
    ///
    /// Non-finite observations are ignored: the running mean is an
    /// exponential average, so a single NaN would poison it (and every
    /// later statistic) permanently.
    pub fn push(&mut self, x: Real) -> bool {
        if !x.is_finite() {
            return false;
        }
        self.n += 1;
        // Running (optionally fading) mean.
        self.mean += (x - self.mean) / (self.n as Real).min(1.0 / (1.0 - self.alpha + 1e-12));
        self.cumulative = self.alpha * self.cumulative + (x - self.mean - self.delta);
        self.minimum = self.minimum.min(self.cumulative);
        self.statistic() > self.lambda
    }

    /// Resets all state.
    pub fn reset(&mut self) {
        let (d, l, a) = (self.delta, self.lambda, self.alpha);
        *self = PageHinkley::new(d, l).with_alpha(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    #[test]
    fn stable_on_stationary_stream() {
        let mut ph = PageHinkley::new(0.1, 50.0);
        let mut rng = Rng::seed_from(1);
        for _ in 0..5000 {
            assert!(!ph.push(rng.normal(1.0, 0.2)));
        }
    }

    #[test]
    fn detects_mean_increase() {
        let mut ph = PageHinkley::new(0.1, 30.0);
        let mut rng = Rng::seed_from(2);
        for _ in 0..1000 {
            assert!(!ph.push(rng.normal(1.0, 0.2)));
        }
        let mut detected = None;
        for i in 0..1000 {
            if ph.push(rng.normal(2.0, 0.2)) {
                detected = Some(i);
                break;
            }
        }
        let d = detected.expect("increase not detected");
        assert!(d < 200, "delay {d}");
    }

    #[test]
    fn one_sided_ignores_decrease() {
        let mut ph = PageHinkley::new(0.1, 30.0);
        let mut rng = Rng::seed_from(3);
        for _ in 0..1000 {
            ph.push(rng.normal(2.0, 0.2));
        }
        for _ in 0..1000 {
            assert!(!ph.push(rng.normal(0.5, 0.2)));
        }
    }

    #[test]
    fn larger_lambda_is_slower() {
        let delay = |lambda: Real| -> usize {
            let mut ph = PageHinkley::new(0.05, lambda);
            let mut rng = Rng::seed_from(4);
            for _ in 0..500 {
                ph.push(rng.normal(1.0, 0.1));
            }
            for i in 0..5000 {
                if ph.push(rng.normal(1.8, 0.1)) {
                    return i;
                }
            }
            5000
        };
        assert!(delay(10.0) < delay(100.0));
    }

    #[test]
    fn non_finite_values_do_not_poison_the_mean() {
        let mut ph = PageHinkley::new(0.1, 30.0);
        let mut rng = Rng::seed_from(6);
        for _ in 0..1000 {
            assert!(!ph.push(rng.normal(1.0, 0.2)));
        }
        let (n, stat) = (ph.count(), ph.statistic());
        for bad in [Real::NAN, Real::INFINITY, Real::NEG_INFINITY] {
            assert!(!ph.push(bad));
        }
        assert_eq!(ph.count(), n);
        assert_eq!(ph.statistic(), stat);
        assert!(ph.statistic().is_finite());
        let mut detected = false;
        for _ in 0..1000 {
            detected |= ph.push(rng.normal(2.0, 0.2));
        }
        assert!(detected, "increase after NaN burst never detected");
    }

    #[test]
    fn reset_clears_statistic() {
        let mut ph = PageHinkley::new(0.0, 5.0);
        let mut rng = Rng::seed_from(5);
        for _ in 0..100 {
            ph.push(rng.normal(3.0, 0.5));
        }
        ph.reset();
        assert_eq!(ph.count(), 0);
        assert_eq!(ph.statistic(), 0.0);
    }
}
