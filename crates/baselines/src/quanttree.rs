//! Quant Tree (Boracchi, Carrera, Cervellera & Macciò, ICML 2018).
//!
//! Quant Tree recursively splits the feature space with axis-aligned cuts
//! placed at *quantiles* of the training data, producing `K` bins that each
//! hold a target fraction of the training mass. Its key property: the
//! distribution of any histogram test statistic computed on a fresh batch
//! depends only on `(N_train, K, batch_size)` — not on the data
//! distribution or the dimensionality — so detection thresholds can be
//! computed once by Monte-Carlo simulation on *univariate uniform* data and
//! reused for any stream.
//!
//! The detector buffers `batch_size` samples (this buffer is what Table 4
//! charges it for), bins them, computes the Pearson statistic against the
//! training bin probabilities, and flags drift when it exceeds the
//! threshold.

use crate::{BatchDriftDetector, BatchVerdict};
use seqdrift_linalg::{stats, Real, Rng};
use std::num::NonZeroUsize;

/// One axis-aligned cut in the Quant Tree partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Feature index the cut tests.
    pub dim: usize,
    /// Cut threshold.
    pub threshold: Real,
    /// When true the bin captures `x[dim] <= threshold`; otherwise
    /// `x[dim] >= threshold`.
    pub leq: bool,
}

/// A fitted Quant Tree partition: `K` bins defined by `K - 1` ordered splits
/// plus the remainder bin.
#[derive(Debug, Clone)]
pub struct Partition {
    splits: Vec<Split>,
    /// Empirical training probability of each bin (length `K`).
    probs: Vec<Real>,
}

impl Partition {
    /// Builds a `k`-bin partition of `train` with uniform target
    /// probabilities, choosing a random dimension and tail for each cut.
    pub fn build(train: &[Vec<Real>], k: usize, rng: &mut Rng) -> Partition {
        assert!(k >= 2, "quanttree: need at least 2 bins");
        assert!(
            train.len() >= k,
            "quanttree: need at least k training samples"
        );
        let n = train.len();
        let dim = train[0].len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut splits = Vec::with_capacity(k - 1);
        let mut probs = Vec::with_capacity(k);
        let mut column: Vec<Real> = Vec::with_capacity(n);

        for bin in 0..(k - 1) {
            // Capture 1/(K - bin) of the remaining points so bins end up
            // with ~1/K of the total each.
            let gamma = 1.0 / (k - bin) as Real;
            let d = rng.below(dim as u64) as usize;
            let leq = rng.below(2) == 0;

            column.clear();
            column.extend(remaining.iter().map(|&i| train[i][d]));
            column.sort_by(|a, b| a.partial_cmp(b).expect("NaN in training data"));
            let q = if leq { gamma } else { 1.0 - gamma };
            let threshold = stats::quantile_sorted(&column, q);

            let captured = |x: &[Real]| {
                if leq {
                    x[d] <= threshold
                } else {
                    x[d] >= threshold
                }
            };
            let before = remaining.len();
            remaining.retain(|&i| !captured(&train[i]));
            let captured_count = before - remaining.len();
            splits.push(Split {
                dim: d,
                threshold,
                leq,
            });
            probs.push(captured_count as Real / n as Real);
        }
        probs.push(remaining.len() as Real / n as Real);
        Partition { splits, probs }
    }

    /// Number of bins.
    pub fn k(&self) -> usize {
        self.probs.len()
    }

    /// Training bin probabilities.
    pub fn probs(&self) -> &[Real] {
        &self.probs
    }

    /// Bin index of a point: the first split that captures it, else the
    /// remainder bin. Order matters — bins were carved out sequentially.
    pub fn bin_of(&self, x: &[Real]) -> usize {
        for (i, s) in self.splits.iter().enumerate() {
            let captured = if s.leq {
                x[s.dim] <= s.threshold
            } else {
                x[s.dim] >= s.threshold
            };
            if captured {
                return i;
            }
        }
        self.splits.len()
    }

    /// Scalars stored by the partition itself.
    pub fn memory_scalars(&self) -> usize {
        // Each split: threshold + dim + direction (count the bookkeeping as
        // one scalar-equivalent each) + the probability table.
        self.splits.len() * 3 + self.probs.len()
    }
}

/// Distribution-free Monte-Carlo threshold for the Pearson statistic.
///
/// Simulates `n_mc` independent (train, batch) pairs of *uniform univariate*
/// data — valid for any distribution/dimension thanks to Quant Tree's
/// distribution-free property — and returns the `1 - alpha` quantile of the
/// resulting statistics. Replications run in parallel across std threads;
/// each replication derives its own seed, so the result is independent of
/// the thread count.
pub fn monte_carlo_threshold(
    n_train: usize,
    k: usize,
    batch_size: usize,
    alpha: Real,
    n_mc: usize,
    seed: u64,
) -> Real {
    let one_rep = |rep: usize| {
        let mut rng = Rng::seed_from(seed ^ (rep as u64).wrapping_mul(0x9E37_79B9));
        let train: Vec<Vec<Real>> = (0..n_train).map(|_| vec![rng.uniform()]).collect();
        let partition = Partition::build(&train, k, &mut rng);
        let mut counts = vec![0u64; k];
        for _ in 0..batch_size {
            counts[partition.bin_of(&[rng.uniform()])] += 1;
        }
        stats::pearson_chi2(&counts, partition.probs())
    };
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n_mc.max(1));
    let mut stats_out = vec![0.0 as Real; n_mc];
    let one_rep = &one_rep;
    std::thread::scope(|s| {
        // Strided assignment: worker w owns replications w, w+workers, ...
        for part in split_strided(&mut stats_out, workers) {
            s.spawn(move || {
                for (i, slot) in part {
                    *slot = one_rep(i);
                }
            });
        }
    });
    stats_out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    stats::quantile_sorted(&stats_out, 1.0 - alpha)
}

/// Splits `out` into `workers` strided index/slot lists so scoped threads
/// can fill disjoint subsets without locking.
fn split_strided(out: &mut [Real], workers: usize) -> Vec<Vec<(usize, &mut Real)>> {
    let mut parts: Vec<Vec<(usize, &mut Real)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, slot) in out.iter_mut().enumerate() {
        parts[i % workers].push((i, slot));
    }
    parts
}

/// Configuration for the [`QuantTree`] detector.
#[derive(Debug, Clone)]
pub struct QuantTreeConfig {
    /// Number of histogram bins `K` (paper: 32 for NSL-KDD, 16 for fan).
    pub bins: usize,
    /// Batch size `ν` (paper: 480 for NSL-KDD, 235 for fan).
    pub batch_size: usize,
    /// False-positive rate for the Monte-Carlo threshold.
    pub alpha: Real,
    /// Monte-Carlo replications for the threshold estimate.
    pub mc_reps: usize,
    /// Seed for partition construction and threshold simulation.
    pub seed: u64,
}

impl Default for QuantTreeConfig {
    fn default() -> Self {
        QuantTreeConfig {
            bins: 32,
            batch_size: 480,
            alpha: 0.01,
            mc_reps: 2000,
            seed: 0x51AB_71EE,
        }
    }
}

/// The Quant Tree drift detector.
#[derive(Debug, Clone)]
pub struct QuantTree {
    partition: Partition,
    threshold: Real,
    /// Precomputed threshold for partitions refitted on one batch
    /// (`n_train = batch_size`). Quant Tree's distribution-free property
    /// makes thresholds a pure function of `(N, K, ν)`, so — like the
    /// original paper's lookup tables — they are simulated once at fit
    /// time, never in the streaming loop.
    refit_threshold: Real,
    batch_size: usize,
    bins: usize,
    seed: u64,
    dim: usize,
    /// Buffered batch (stored samples — the memory cost Table 4 measures).
    buffer: Vec<Vec<Real>>,
    /// Last computed Pearson statistic (diagnostics).
    last_statistic: Option<Real>,
}

impl QuantTree {
    /// Fits the partition on `train` and computes the detection thresholds
    /// (for this training size and for later batch-sized refits).
    pub fn fit(train: &[Vec<Real>], cfg: &QuantTreeConfig) -> QuantTree {
        let mut rng = Rng::seed_from(cfg.seed);
        let partition = Partition::build(train, cfg.bins, &mut rng);
        let threshold = monte_carlo_threshold(
            train.len(),
            cfg.bins,
            cfg.batch_size,
            cfg.alpha,
            cfg.mc_reps,
            cfg.seed,
        );
        let refit_threshold = if train.len() == cfg.batch_size {
            threshold
        } else {
            monte_carlo_threshold(
                cfg.batch_size,
                cfg.bins,
                cfg.batch_size,
                cfg.alpha,
                cfg.mc_reps,
                cfg.seed ^ 0x11EF,
            )
        };
        QuantTree {
            partition,
            threshold,
            refit_threshold,
            batch_size: cfg.batch_size,
            bins: cfg.bins,
            seed: cfg.seed,
            dim: train[0].len(),
            buffer: Vec::with_capacity(cfg.batch_size),
            last_statistic: None,
        }
    }

    /// Rebuilds the partition on fresh data (after a detected drift) using
    /// the precomputed refit threshold — no Monte-Carlo in the hot path.
    pub fn refit_partition(&mut self, data: &[Vec<Real>]) {
        let mut rng = Rng::seed_from(self.seed.wrapping_add(1));
        self.partition = Partition::build(data, self.bins, &mut rng);
        self.threshold = self.refit_threshold;
        self.buffer.clear();
        self.last_statistic = None;
    }

    /// The fitted partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The detection threshold in use.
    pub fn threshold(&self) -> Real {
        self.threshold
    }

    /// Overrides the threshold (testing / manual tuning).
    pub fn set_threshold(&mut self, t: Real) {
        self.threshold = t;
    }

    /// Pearson statistic of the most recently completed batch.
    pub fn last_statistic(&self) -> Option<Real> {
        self.last_statistic
    }
}

impl BatchDriftDetector for QuantTree {
    fn batch_size(&self) -> usize {
        self.batch_size
    }

    fn push(&mut self, x: &[Real]) -> BatchVerdict {
        debug_assert_eq!(x.len(), self.dim);
        self.buffer.push(x.to_vec());
        if self.buffer.len() < self.batch_size {
            return BatchVerdict::Pending;
        }
        let mut counts = vec![0u64; self.partition.k()];
        for s in &self.buffer {
            counts[self.partition.bin_of(s)] += 1;
        }
        self.buffer.clear();
        let stat = stats::pearson_chi2(&counts, self.partition.probs());
        self.last_statistic = Some(stat);
        if stat >= self.threshold {
            BatchVerdict::Drift
        } else {
            BatchVerdict::NoDrift
        }
    }

    fn reset_window(&mut self) {
        self.buffer.clear();
    }

    fn memory_scalars(&self) -> usize {
        self.batch_size * self.dim + self.partition.memory_scalars() + self.partition.k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_data(n: usize, dim: usize, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_uniform(&mut x, 0.0, 1.0);
                x
            })
            .collect()
    }

    fn shifted_data(n: usize, dim: usize, shift: Real, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_uniform(&mut x, shift, 1.0 + shift);
                x
            })
            .collect()
    }

    #[test]
    fn partition_probs_sum_to_one_and_are_balanced() {
        let train = uniform_data(1000, 4, 1);
        let mut rng = Rng::seed_from(2);
        let p = Partition::build(&train, 8, &mut rng);
        assert_eq!(p.k(), 8);
        let total: Real = p.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        for &pr in p.probs() {
            assert!(
                (pr - 0.125).abs() < 0.05,
                "bin prob {pr} far from target 1/8"
            );
        }
    }

    #[test]
    fn every_training_point_lands_in_a_bin_matching_probs() {
        let train = uniform_data(500, 3, 3);
        let mut rng = Rng::seed_from(4);
        let p = Partition::build(&train, 6, &mut rng);
        let mut counts = vec![0u64; p.k()];
        for x in &train {
            counts[p.bin_of(x)] += 1;
        }
        for (c, &pr) in counts.iter().zip(p.probs().iter()) {
            assert_eq!(*c as Real / 500.0, pr);
        }
    }

    #[test]
    fn monte_carlo_threshold_is_positive_and_orders_with_alpha() {
        let t_loose = monte_carlo_threshold(200, 8, 64, 0.05, 300, 5);
        let t_tight = monte_carlo_threshold(200, 8, 64, 0.005, 300, 5);
        assert!(t_loose > 0.0);
        assert!(t_tight > t_loose);
    }

    #[test]
    fn no_drift_on_stationary_stream() {
        let train = uniform_data(800, 4, 6);
        let cfg = QuantTreeConfig {
            bins: 8,
            batch_size: 100,
            alpha: 0.005,
            mc_reps: 500,
            seed: 7,
        };
        let mut qt = QuantTree::fit(&train, &cfg);
        let test = uniform_data(1000, 4, 8);
        let mut drifts = 0;
        let mut batches = 0;
        for x in &test {
            match qt.push(x) {
                BatchVerdict::Drift => {
                    drifts += 1;
                    batches += 1;
                }
                BatchVerdict::NoDrift => batches += 1,
                BatchVerdict::Pending => {}
            }
        }
        assert_eq!(batches, 10);
        assert!(drifts <= 1, "{drifts} false alarms in 10 batches");
    }

    #[test]
    fn detects_shifted_distribution() {
        let train = uniform_data(800, 4, 9);
        let cfg = QuantTreeConfig {
            bins: 8,
            batch_size: 100,
            alpha: 0.01,
            mc_reps: 500,
            seed: 10,
        };
        let mut qt = QuantTree::fit(&train, &cfg);
        let test = shifted_data(100, 4, 0.5, 11);
        let mut verdict = BatchVerdict::Pending;
        for x in &test {
            verdict = qt.push(x);
        }
        assert_eq!(verdict, BatchVerdict::Drift);
        assert!(qt.last_statistic().unwrap() > qt.threshold());
    }

    #[test]
    fn pending_until_batch_full() {
        let train = uniform_data(300, 2, 12);
        let cfg = QuantTreeConfig {
            bins: 4,
            batch_size: 50,
            alpha: 0.01,
            mc_reps: 200,
            seed: 13,
        };
        let mut qt = QuantTree::fit(&train, &cfg);
        let test = uniform_data(49, 2, 14);
        for x in &test {
            assert_eq!(qt.push(x), BatchVerdict::Pending);
        }
    }

    #[test]
    fn reset_window_clears_partial_batch() {
        let train = uniform_data(300, 2, 15);
        let cfg = QuantTreeConfig {
            bins: 4,
            batch_size: 10,
            alpha: 0.01,
            mc_reps: 200,
            seed: 16,
        };
        let mut qt = QuantTree::fit(&train, &cfg);
        for x in uniform_data(5, 2, 17) {
            qt.push(&x);
        }
        qt.reset_window();
        // Needs a full 10 more samples for a verdict now.
        let more = uniform_data(10, 2, 18);
        let mut verdicts = 0;
        for x in &more {
            if qt.push(x) != BatchVerdict::Pending {
                verdicts += 1;
            }
        }
        assert_eq!(verdicts, 1);
    }

    #[test]
    fn memory_dominated_by_batch_buffer() {
        let train = uniform_data(300, 511, 19);
        let cfg = QuantTreeConfig {
            bins: 16,
            batch_size: 235,
            alpha: 0.01,
            mc_reps: 50,
            seed: 20,
        };
        let qt = QuantTree::fit(&train, &cfg);
        let mem = qt.memory_scalars();
        assert!(mem >= 235 * 511, "memory {mem} misses the batch buffer");
        assert!(mem < 235 * 511 + 1000);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = uniform_data(200, 3, 21);
        let cfg = QuantTreeConfig {
            bins: 4,
            batch_size: 20,
            alpha: 0.01,
            mc_reps: 100,
            seed: 22,
        };
        let a = QuantTree::fit(&train, &cfg);
        let b = QuantTree::fit(&train, &cfg);
        assert_eq!(a.threshold(), b.threshold());
        assert_eq!(a.partition().probs(), b.partition().probs());
    }
}
