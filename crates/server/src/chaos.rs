//! `ChaosProxy`: a std-only, in-process TCP fault-injection proxy for
//! attacking the *connection* between device clients and the ingest
//! server — not just the bytes on it (the hostile suite already covers
//! those).
//!
//! The proxy sits between a client and an upstream server, forwarding
//! both directions through per-connection pump threads that inject a
//! **seeded, deterministic schedule** of network faults:
//!
//! * **connection resets** — the connection is cut abruptly (both
//!   sockets shut down) after a scheduled number of client→server bytes,
//!   which lands mid-frame more often than not;
//! * **short writes** — forwarded bytes are re-chunked into tiny writes,
//!   so the receiver sees every possible partial-read boundary;
//! * **byte stalls** (slow-loris, both directions) — forwarding pauses at
//!   scheduled byte offsets for scheduled durations;
//! * **latency jitter** — every forwarded chunk is delayed by a small
//!   seeded amount;
//! * **blackhole windows** — at a scheduled byte offset the stream is
//!   held (no bytes, no FIN, no RST) for a scheduled duration, then
//!   released.
//!
//! Every schedule is a pure function of `(seed, connection index,
//! direction)` — see [`ConnPlan::derive`] — so a failing run is
//! replayable from a single `--chaos-seed`, and two proxies with the
//! same seed attack connection *n* identically. Byte-indexed triggers
//! (rather than timer-based ones) are what make the schedule independent
//! of scheduler timing; only the wall-clock interleaving varies between
//! runs, never which faults hit which bytes.
//!
//! The proxy never parses `SQNP` — it is protocol-blind, which is the
//! point: the endpoints must survive arbitrary cut points, not just
//! frame-aligned ones.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use seqdrift_linalg::Rng;

/// Which half of the connection a plan or event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server bytes.
    ClientToServer,
    /// Server → client bytes.
    ServerToClient,
}

impl core::fmt::Display for Direction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Direction::ClientToServer => "c2s",
            Direction::ServerToClient => "s2c",
        })
    }
}

/// Fault families and their schedule parameters. A `None` family is
/// disabled; ranges are sampled per connection from the seeded RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Master seed: the single number that replays every failure.
    pub seed: u64,
    /// Probability a connection is reset, and the client→server byte
    /// offset range the cut is drawn from.
    pub reset: Option<(f64, (u64, u64))>,
    /// Cap on bytes per forwarded write (short/partial writes). The cap
    /// itself is drawn from the range per connection.
    pub short_write_cap: Option<(usize, usize)>,
    /// Byte stalls: `(interval range, duration range ms)` — forwarding
    /// pauses every `interval` bytes for `duration`, both directions.
    pub stall: Option<((u64, u64), (u64, u64))>,
    /// Latency jitter range in microseconds added to every forwarded
    /// chunk.
    pub jitter_us: Option<(u64, u64)>,
    /// Blackhole windows: `(probability, byte offset range, duration
    /// range ms)` — the stream is held silently, then released.
    #[allow(clippy::type_complexity)]
    pub blackhole: Option<(f64, (u64, u64), (u64, u64))>,
}

impl ChaosConfig {
    /// No faults: the proxy is a transparent forwarder.
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            reset: None,
            short_write_cap: None,
            stall: None,
            jitter_us: None,
            blackhole: None,
        }
    }

    /// Every fault family at once, tuned so a reconnect-capable client
    /// still finishes: frequent mid-frame resets, 1–16-byte writes,
    /// short stalls, sub-millisecond jitter, and sub-second blackholes.
    pub fn all_faults(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            reset: Some((0.5, (200, 4_000))),
            short_write_cap: Some((1, 16)),
            stall: Some(((512, 2_048), (5, 40))),
            jitter_us: Some((0, 500)),
            blackhole: Some((0.3, (100, 2_000), (50, 300))),
        }
    }

    /// Enables connection resets.
    pub fn with_resets(mut self, prob: f64, after_bytes: (u64, u64)) -> Self {
        self.reset = Some((prob, after_bytes));
        self
    }

    /// Enables short writes with a per-connection cap from the range.
    pub fn with_short_writes(mut self, cap: (usize, usize)) -> Self {
        self.short_write_cap = Some(cap);
        self
    }

    /// Enables byte stalls (slow-loris) in both directions.
    pub fn with_stalls(mut self, every_bytes: (u64, u64), ms: (u64, u64)) -> Self {
        self.stall = Some((every_bytes, ms));
        self
    }

    /// Enables per-chunk latency jitter.
    pub fn with_jitter_us(mut self, us: (u64, u64)) -> Self {
        self.jitter_us = Some(us);
        self
    }

    /// Enables blackhole windows.
    pub fn with_blackholes(mut self, prob: f64, after_bytes: (u64, u64), ms: (u64, u64)) -> Self {
        self.blackhole = Some((prob, after_bytes, ms));
        self
    }
}

/// The deterministic fault schedule for one direction of one connection.
/// Everything observable about the injected faults is decided here, up
/// front, from the seed — the pump threads only execute the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnPlan {
    /// Connection index (accept order, starting at 0).
    pub conn: u64,
    /// Direction this plan drives.
    pub dir: Direction,
    /// Cut the whole connection once this many client→server bytes have
    /// been forwarded (present on the client→server plan only).
    pub cut_after: Option<u64>,
    /// Hold the stream for `.1` once `.0` bytes have been forwarded.
    pub blackhole: Option<(u64, Duration)>,
    /// Max bytes per forwarded write (`usize::MAX` = unchunked).
    pub short_write_cap: usize,
    /// Stall generator parameters: `(interval range, ms range)`.
    stall: Option<((u64, u64), (u64, u64))>,
    /// Jitter range in microseconds.
    jitter_us: Option<(u64, u64)>,
    /// Seed for the plan's own draw stream (stall points, jitter).
    stream_seed: u64,
}

/// Mixes the master seed with a connection index and direction into an
/// independent, well-distributed sub-seed (SplitMix64 constant).
fn sub_seed(seed: u64, conn: u64, dir: Direction) -> u64 {
    let dir_salt: u64 = match dir {
        Direction::ClientToServer => 0x00C2_5000,
        Direction::ServerToClient => 0x0052_C000,
    };
    seed ^ conn
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(dir_salt)
}

impl ConnPlan {
    /// Derives the schedule for `(cfg.seed, conn, dir)`. Pure: the same
    /// inputs always yield the same plan, which is what makes a chaos
    /// run replayable from its seed alone.
    pub fn derive(cfg: &ChaosConfig, conn: u64, dir: Direction) -> ConnPlan {
        let mut rng = Rng::seed_from(sub_seed(cfg.seed, conn, dir));
        // Connection-scoped decision (reset) is drawn only on the c2s
        // side so the two directions cannot disagree about it.
        let cut_after = match (dir, cfg.reset) {
            (Direction::ClientToServer, Some((prob, (lo, hi)))) if coin(&mut rng, prob) => {
                Some(range_u64(&mut rng, lo, hi))
            }
            _ => {
                if matches!(dir, Direction::ClientToServer) && cfg.reset.is_some() {
                    // Burn the offset draw so enabling/disabling one
                    // connection's reset never shifts later draws.
                    let _ = rng.next_u64();
                }
                None
            }
        };
        let blackhole = match cfg.blackhole {
            Some((prob, (lo, hi), (ms_lo, ms_hi))) => {
                let hit = coin(&mut rng, prob);
                let at = range_u64(&mut rng, lo, hi);
                let ms = range_u64(&mut rng, ms_lo, ms_hi);
                hit.then_some((at, Duration::from_millis(ms)))
            }
            None => None,
        };
        let short_write_cap = match cfg.short_write_cap {
            Some((lo, hi)) => range_u64(&mut rng, lo as u64, hi as u64) as usize,
            None => usize::MAX,
        };
        ConnPlan {
            conn,
            dir,
            cut_after,
            blackhole,
            short_write_cap: short_write_cap.max(1),
            stall: cfg.stall,
            jitter_us: cfg.jitter_us,
            stream_seed: rng.next_u64(),
        }
    }

    /// The first `n` scheduled stall points as `(byte offset, pause)` —
    /// the same sequence the pump will execute. Exposed so tests (and
    /// humans debugging a seed) can inspect the schedule without running
    /// any traffic.
    pub fn stall_preview(&self, n: usize) -> Vec<(u64, Duration)> {
        let mut seq = StallSeq::new(self);
        (0..n).filter_map(|_| seq.next_point()).collect()
    }
}

/// `true` with probability `p`, from one RNG draw.
fn coin(rng: &mut Rng, p: f64) -> bool {
    (rng.uniform() as f64) < p
}

/// Uniform in `[lo, hi]` (handles `lo == hi` and swapped bounds).
fn range_u64(rng: &mut Rng, lo: u64, hi: u64) -> u64 {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    lo + rng.below(hi - lo + 1)
}

/// Lazy deterministic generator of stall points for one plan.
struct StallSeq {
    rng: Rng,
    params: Option<((u64, u64), (u64, u64))>,
    next_at: u64,
}

impl StallSeq {
    fn new(plan: &ConnPlan) -> StallSeq {
        StallSeq {
            rng: Rng::seed_from(plan.stream_seed),
            params: plan.stall,
            next_at: 0,
        }
    }

    fn next_point(&mut self) -> Option<(u64, Duration)> {
        let ((int_lo, int_hi), (ms_lo, ms_hi)) = self.params?;
        self.next_at =
            self.next_at
                .saturating_add(range_u64(&mut self.rng, int_lo.max(1), int_hi.max(1)));
        let ms = range_u64(&mut self.rng, ms_lo, ms_hi);
        Some((self.next_at, Duration::from_millis(ms)))
    }
}

/// One injected fault, for the observability log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Connection index.
    pub conn: u64,
    /// Direction the fault hit.
    pub dir: Direction,
    /// Byte offset in that direction's stream.
    pub at_byte: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// The injected fault family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Connection cut (both sockets shut down).
    Reset,
    /// Forwarding paused for the given duration.
    Stall(Duration),
    /// Stream held silently for the given duration.
    Blackhole(Duration),
}

struct ProxyShared {
    cfg: ChaosConfig,
    upstream: SocketAddr,
    stop: AtomicBool,
    conns: AtomicU64,
    events: Mutex<Vec<ChaosEvent>>,
    pumps: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The running proxy. Point clients at [`ChaosProxy::local_addr`];
/// traffic is forwarded to the upstream address through the fault
/// schedule. Dropping the proxy (or calling [`ChaosProxy::shutdown`])
/// cuts every live connection and joins the pump threads.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts proxying to
    /// `upstream` under `cfg`'s fault schedule.
    pub fn spawn(upstream: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ProxyShared {
            cfg,
            upstream,
            stop: AtomicBool::new(false),
            conns: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            pumps: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));
        Ok(ChaosProxy {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.shared.conns.load(Ordering::Relaxed)
    }

    /// Snapshot of every fault injected so far, in injection order per
    /// connection (cross-connection order depends on scheduling).
    pub fn events(&self) -> Vec<ChaosEvent> {
        match self.shared.events.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Stops accepting, cuts every live connection, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let pumps = {
            let mut guard = match self.shared.pumps.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *guard)
        };
        for h in pumps {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<ProxyShared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((client, _)) => {
                let conn = shared.conns.fetch_add(1, Ordering::Relaxed);
                let upstream = match TcpStream::connect(shared.upstream) {
                    Ok(s) => s,
                    Err(_) => continue, // upstream down: drop the client
                };
                start_pumps(client, upstream, conn, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Spawns the two directional pumps for one proxied connection. Both
/// pumps hold handles to *both* sockets so a scheduled reset can cut the
/// connection whole, exactly like a middlebox dropping the flow.
fn start_pumps(client: TcpStream, upstream: TcpStream, conn: u64, shared: &Arc<ProxyShared>) {
    let pairs = match (client.try_clone(), upstream.try_clone()) {
        (Ok(c2), Ok(u2)) => [(client, upstream), (c2, u2)],
        _ => return, // clone failed: drop the connection
    };
    let [(c_read, u_write), (c_write, u_read)] = pairs;
    let plans = [
        (
            ConnPlan::derive(&shared.cfg, conn, Direction::ClientToServer),
            c_read,
            u_write,
        ),
        (
            ConnPlan::derive(&shared.cfg, conn, Direction::ServerToClient),
            u_read,
            c_write,
        ),
    ];
    let mut guard = match shared.pumps.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    for (plan, src, dst) in plans {
        let shared = Arc::clone(shared);
        guard.push(std::thread::spawn(move || pump(plan, src, dst, &shared)));
    }
}

/// Sleeps in short slices so a proxy shutdown never waits out a long
/// scheduled stall or blackhole.
fn interruptible_sleep(total: Duration, shared: &ProxyShared) {
    let deadline = std::time::Instant::now() + total;
    while std::time::Instant::now() < deadline {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10).min(total));
    }
}

fn log_event(shared: &ProxyShared, event: ChaosEvent) {
    match shared.events.lock() {
        Ok(mut g) => g.push(event),
        Err(poisoned) => poisoned.into_inner().push(event),
    }
}

/// Forwards one direction, executing the plan's fault schedule. Returns
/// when the source closes, a fault cuts the connection, the transport
/// fails, or the proxy stops.
fn pump(plan: ConnPlan, mut src: TcpStream, mut dst: TcpStream, shared: &ProxyShared) {
    // Read in ticks so the stop flag is honoured on silent links.
    if src
        .set_read_timeout(Some(Duration::from_millis(20)))
        .is_err()
    {
        return;
    }
    let _ = dst.set_nodelay(true);
    let mut stalls = StallSeq::new(&plan);
    let mut next_stall = stalls.next_point();
    let mut jitter_rng = Rng::seed_from(plan.stream_seed ^ 0x4A17);
    let mut forwarded: u64 = 0;
    let mut buf = [0u8; 4096];
    let cut_both = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            cut_both(&src, &dst);
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Propagate the half-close; the peer's pump keeps running
                // until its own side closes.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                cut_both(&src, &dst);
                return;
            }
        };
        let mut rest = &buf[..n];
        while !rest.is_empty() {
            if shared.stop.load(Ordering::Relaxed) {
                cut_both(&src, &dst);
                return;
            }
            // Next byte-indexed fault boundary within this chunk.
            let mut limit = rest.len();
            if let Some(cut_at) = plan.cut_after {
                if forwarded >= cut_at {
                    log_event(
                        shared,
                        ChaosEvent {
                            conn: plan.conn,
                            dir: plan.dir,
                            at_byte: forwarded,
                            kind: FaultKind::Reset,
                        },
                    );
                    cut_both(&src, &dst);
                    return;
                }
                limit = limit.min((cut_at - forwarded) as usize);
            }
            if let Some((at, hold)) = plan.blackhole {
                if forwarded == at {
                    log_event(
                        shared,
                        ChaosEvent {
                            conn: plan.conn,
                            dir: plan.dir,
                            at_byte: forwarded,
                            kind: FaultKind::Blackhole(hold),
                        },
                    );
                    interruptible_sleep(hold, shared);
                } else if forwarded < at {
                    limit = limit.min((at - forwarded) as usize);
                }
            }
            while let Some((at, pause)) = next_stall {
                if forwarded == at {
                    log_event(
                        shared,
                        ChaosEvent {
                            conn: plan.conn,
                            dir: plan.dir,
                            at_byte: forwarded,
                            kind: FaultKind::Stall(pause),
                        },
                    );
                    interruptible_sleep(pause, shared);
                    next_stall = stalls.next_point();
                } else {
                    if forwarded < at {
                        limit = limit.min((at - forwarded) as usize);
                    } else {
                        // Overshot (stall interval shorter than one
                        // chunk step): skip to the next point.
                        next_stall = stalls.next_point();
                        continue;
                    }
                    break;
                }
            }
            if let Some((lo, hi)) = plan.jitter_us {
                let us = range_u64(&mut jitter_rng, lo, hi);
                if us > 0 {
                    std::thread::sleep(Duration::from_micros(us));
                }
            }
            let take = limit.min(plan.short_write_cap).max(1);
            match dst.write_all(&rest[..take]) {
                Ok(()) => {}
                Err(_) => {
                    cut_both(&src, &dst);
                    return;
                }
            }
            forwarded += take as u64;
            rest = &rest[take..];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed_conn_and_dir() {
        let cfg = ChaosConfig::all_faults(1234);
        for conn in 0..32 {
            for dir in [Direction::ClientToServer, Direction::ServerToClient] {
                let a = ConnPlan::derive(&cfg, conn, dir);
                let b = ConnPlan::derive(&cfg, conn, dir);
                assert_eq!(a, b, "conn {conn} {dir}");
                assert_eq!(a.stall_preview(16), b.stall_preview(16));
            }
        }
    }

    #[test]
    fn different_seeds_and_connections_get_different_schedules() {
        let a = ChaosConfig::all_faults(1);
        let b = ChaosConfig::all_faults(2);
        let plans_a: Vec<ConnPlan> = (0..16)
            .map(|c| ConnPlan::derive(&a, c, Direction::ClientToServer))
            .collect();
        let plans_b: Vec<ConnPlan> = (0..16)
            .map(|c| ConnPlan::derive(&b, c, Direction::ClientToServer))
            .collect();
        assert_ne!(plans_a, plans_b, "seeds must decorrelate schedules");
        // Connections within one seed differ too (with 16 draws the odds
        // of a collision across every field are negligible).
        let distinct: std::collections::HashSet<String> =
            plans_a.iter().map(|p| format!("{p:?}")).collect();
        assert!(distinct.len() > 1, "per-connection schedules must vary");
    }

    #[test]
    fn quiet_config_disables_every_family() {
        let cfg = ChaosConfig::quiet(7);
        let plan = ConnPlan::derive(&cfg, 0, Direction::ClientToServer);
        assert_eq!(plan.cut_after, None);
        assert_eq!(plan.blackhole, None);
        assert_eq!(plan.short_write_cap, usize::MAX);
        assert!(plan.stall_preview(4).is_empty());
    }

    #[test]
    fn stall_points_are_strictly_increasing() {
        let cfg = ChaosConfig::quiet(9).with_stalls((64, 256), (1, 5));
        let plan = ConnPlan::derive(&cfg, 3, Direction::ServerToClient);
        let points = plan.stall_preview(64);
        assert_eq!(points.len(), 64);
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "{:?}", &points[..8]);
        }
    }
}
