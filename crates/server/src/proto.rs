//! The `SQNP` wire protocol: versioned, length-prefixed, CRC-sealed
//! binary frames carrying device samples to a fleet host over TCP.
//!
//! Every frame is
//!
//! ```text
//! offset  size  field
//!      0     4  magic "SQNP"
//!      4     2  protocol version (u16 LE)
//!      6     1  frame type
//!      7     1  flags
//!      8     8  session id (u64 LE)
//!     16     4  payload length (u32 LE, bounded by MAX_PAYLOAD)
//!     20     n  payload
//!   20+n     4  CRC-32 over header + payload (u32 LE)
//! ```
//!
//! using the same in-repo zlib-compatible CRC-32 as the checkpoint store
//! (`seqdrift_store::crc32`) and the same little-endian fixed-width
//! conventions as `seqdrift_linalg::wire`. The decode discipline mirrors
//! the checkpoint hardening:
//!
//! * the payload length is bounds-checked **before** any allocation, so a
//!   hostile length prefix can never balloon memory;
//! * the CRC is verified **before** the version field is interpreted, so
//!   a bit-flipped version byte reads as corruption ([`ProtoError::BadCrc`]),
//!   not as skew — only a clean frame can raise
//!   [`ProtoError::VersionSkew`];
//! * every variable-length payload field re-checks its length prefix
//!   against the bytes actually remaining before allocating.
//!
//! Framing-level failures (bad magic, bad CRC, version skew, oversized
//! length, unknown frame type) are *fatal* for a connection — a corrupt
//! byte stream cannot be resynchronised — while semantic failures on a
//! well-framed message (unknown session, dimension mismatch, malformed
//! payload) produce a typed [`Message::Nack`] and leave the connection
//! usable. [`NackCode::is_fatal`] encodes the split.

use std::io::Read;

use seqdrift_linalg::Real;
use seqdrift_store::crc32::crc32;

/// Frame magic: "SeQdrift Network Protocol".
pub const MAGIC: &[u8; 4] = b"SQNP";
/// Current protocol version.
pub const VERSION: u16 = 1;
/// Fixed header size in bytes (magic + version + type + flags + session +
/// payload length).
pub const HEADER_LEN: usize = 20;
/// CRC trailer size in bytes.
pub const CRC_LEN: usize = 4;
/// Upper bound on a frame payload. Checked before any allocation; frames
/// claiming more are rejected as hostile without reading the payload.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Flag bit on `SampleAck`: the session has further events queued beyond
/// the ones attached to this ack (send `Drain` to fetch them).
pub const FLAG_EVENTS_PENDING: u8 = 0b0000_0001;

/// Frame type tags. Client-to-server types have the high bit clear,
/// server-to-client replies have it set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Handshake: declares protocol version (header), session id (header),
    /// feature dimension and scalar width (payload).
    Hello = 0x01,
    /// A batch of samples for the session in the header.
    Sample = 0x02,
    /// Liveness probe.
    Ping = 0x03,
    /// Fetch queued drift/fault events for the session.
    Drain = 0x04,
    /// Fetch the session's checkpoint blob (quiescent-point state).
    Snapshot = 0x05,
    /// Orderly goodbye; the server closes the connection.
    Bye = 0x06,
    /// Handshake accepted.
    HelloAck = 0x81,
    /// Sample batch applied (fully); carries pushed-back events.
    SampleAck = 0x82,
    /// Liveness reply.
    Pong = 0x83,
    /// Event fetch reply.
    DrainAck = 0x84,
    /// Checkpoint blob reply.
    SnapshotAck = 0x85,
    /// Backpressure: the session's shard queue stayed full past the feed
    /// deadline. Carries how many rows of the batch were accepted before
    /// the stall so the client can retry the remainder.
    Busy = 0x86,
    /// Typed rejection; [`NackCode`] says why and whether the connection
    /// survives.
    Nack = 0x8F,
}

impl FrameType {
    /// Maps a raw tag byte back to a frame type.
    pub fn from_u8(v: u8) -> Option<FrameType> {
        Some(match v {
            0x01 => FrameType::Hello,
            0x02 => FrameType::Sample,
            0x03 => FrameType::Ping,
            0x04 => FrameType::Drain,
            0x05 => FrameType::Snapshot,
            0x06 => FrameType::Bye,
            0x81 => FrameType::HelloAck,
            0x82 => FrameType::SampleAck,
            0x83 => FrameType::Pong,
            0x84 => FrameType::DrainAck,
            0x85 => FrameType::SnapshotAck,
            0x86 => FrameType::Busy,
            0x8F => FrameType::Nack,
            _ => return None,
        })
    }
}

/// Why a frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NackCode {
    /// Frame did not start with the `SQNP` magic.
    BadMagic = 1,
    /// CRC trailer did not match header + payload.
    BadCrc = 2,
    /// Clean frame from a different protocol version.
    VersionSkew = 3,
    /// Payload length field exceeded [`MAX_PAYLOAD`].
    Oversized = 4,
    /// Unknown frame type tag.
    UnknownType = 5,
    /// Well-framed payload whose fields failed validation.
    BadPayload = 6,
    /// A non-`Hello` frame arrived for a session with no handshake on
    /// this connection.
    NotHello = 7,
    /// The session does not exist and the server has no reference model
    /// to create it from.
    UnknownSession = 8,
    /// The session is permanently quarantined.
    Quarantined = 9,
    /// Declared feature dimension does not match the server's model.
    DimMismatch = 10,
    /// Client and server disagree on the scalar width (f32 vs f64 build).
    ScalarWidth = 11,
    /// The server is draining and no longer accepts work.
    Draining = 12,
    /// Internal server error (details in the message).
    Internal = 13,
    /// Transient overload: the server could not serve the request inside
    /// its deadline (e.g. a HELLO resume-offset query stuck behind a
    /// stalled shard queue). Non-fatal — retry with backoff.
    Busy = 14,
    /// Admission control rejected the connection (connection cap or
    /// per-IP accept-rate limit). Fatal for this connection; reconnect
    /// with backoff.
    AdmissionLimit = 15,
    /// A newer connection has HELLOed this session, fencing this one:
    /// late sample frames from the superseded connection are rejected so
    /// a reconnect can never double-apply in-flight rows. Fatal for this
    /// connection — the client that owns the session is elsewhere now.
    Superseded = 16,
}

impl NackCode {
    /// Framing-level corruption is fatal: the byte stream cannot be
    /// resynchronised, so the server drops the connection after the NACK.
    /// Semantic rejections leave the connection usable.
    pub fn is_fatal(self) -> bool {
        matches!(
            self,
            NackCode::BadMagic
                | NackCode::BadCrc
                | NackCode::VersionSkew
                | NackCode::Oversized
                | NackCode::UnknownType
                | NackCode::Draining
                | NackCode::AdmissionLimit
                | NackCode::Superseded
        )
    }

    /// Maps a raw code byte back to a NACK code.
    pub fn from_u8(v: u8) -> Option<NackCode> {
        Some(match v {
            1 => NackCode::BadMagic,
            2 => NackCode::BadCrc,
            3 => NackCode::VersionSkew,
            4 => NackCode::Oversized,
            5 => NackCode::UnknownType,
            6 => NackCode::BadPayload,
            7 => NackCode::NotHello,
            8 => NackCode::UnknownSession,
            9 => NackCode::Quarantined,
            10 => NackCode::DimMismatch,
            11 => NackCode::ScalarWidth,
            12 => NackCode::Draining,
            13 => NackCode::Internal,
            14 => NackCode::Busy,
            15 => NackCode::AdmissionLimit,
            16 => NackCode::Superseded,
            _ => return None,
        })
    }
}

impl core::fmt::Display for NackCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            NackCode::BadMagic => "bad magic",
            NackCode::BadCrc => "bad crc",
            NackCode::VersionSkew => "version skew",
            NackCode::Oversized => "oversized payload",
            NackCode::UnknownType => "unknown frame type",
            NackCode::BadPayload => "bad payload",
            NackCode::NotHello => "no handshake for session",
            NackCode::UnknownSession => "unknown session",
            NackCode::Quarantined => "session quarantined",
            NackCode::DimMismatch => "dimension mismatch",
            NackCode::ScalarWidth => "scalar width mismatch",
            NackCode::Draining => "server draining",
            NackCode::Internal => "internal error",
            NackCode::Busy => "server busy, retry",
            NackCode::AdmissionLimit => "admission limit",
            NackCode::Superseded => "superseded by newer connection",
        };
        f.write_str(s)
    }
}

/// Errors raised while reading or decoding a frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure (or EOF mid-frame).
    Io(std::io::Error),
    /// Frame did not start with the `SQNP` magic.
    BadMagic,
    /// Clean frame (CRC valid) from a different protocol version.
    VersionSkew(u16),
    /// Unknown frame type tag on a clean frame.
    UnknownType(u8),
    /// Payload length field exceeded [`MAX_PAYLOAD`]; nothing was
    /// allocated.
    Oversized(u32),
    /// CRC trailer mismatch: the frame was torn or tampered with.
    BadCrc {
        /// CRC computed over the received header + payload.
        expected: u32,
        /// CRC carried in the trailer.
        got: u32,
    },
    /// A well-framed payload whose fields failed validation.
    BadPayload(&'static str),
}

impl ProtoError {
    /// The NACK code a server should answer this decode failure with.
    pub fn nack_code(&self) -> NackCode {
        match self {
            ProtoError::Io(_) => NackCode::Internal,
            ProtoError::BadMagic => NackCode::BadMagic,
            ProtoError::VersionSkew(_) => NackCode::VersionSkew,
            ProtoError::UnknownType(_) => NackCode::UnknownType,
            ProtoError::Oversized(_) => NackCode::Oversized,
            ProtoError::BadCrc { .. } => NackCode::BadCrc,
            ProtoError::BadPayload(_) => NackCode::BadPayload,
        }
    }
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::BadMagic => write!(f, "not an SQNP frame"),
            ProtoError::VersionSkew(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::Oversized(n) => {
                write!(f, "payload length {n} exceeds limit {MAX_PAYLOAD}")
            }
            ProtoError::BadCrc { expected, got } => {
                write!(
                    f,
                    "frame CRC mismatch: computed {expected:#010x}, trailer {got:#010x}"
                )
            }
            ProtoError::BadPayload(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// A validated frame: magic, length bound and CRC have been checked and
/// the version matched, but the payload has not yet been interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Frame type tag (validated against [`FrameType`]).
    pub kind: FrameType,
    /// Flag bits.
    pub flags: u8,
    /// Session id from the header.
    pub session: u64,
    /// Raw payload bytes (≤ [`MAX_PAYLOAD`]).
    pub payload: Vec<u8>,
}

/// Assembles one frame: header + payload + CRC trailer, as a single
/// buffer so the transport write is one call.
pub fn encode_frame(kind: FrameType, flags: u8, session: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(kind as u8);
    buf.push(flags);
    buf.extend_from_slice(&session.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Validates a frame whose header and payload+CRC bytes have already been
/// read off the transport (the server reads the two parts separately so it
/// can bound the payload allocation first). Checks, in order: magic,
/// length bound (done by the caller before reading `rest`), CRC, version,
/// frame type.
pub fn decode_frame(header: &[u8; HEADER_LEN], rest: &[u8]) -> Result<RawFrame, ProtoError> {
    if &header[0..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let declared = header_payload_len(header)?;
    if rest.len() != declared + CRC_LEN {
        return Err(ProtoError::BadPayload("payload/CRC length mismatch"));
    }
    let (payload, trailer) = rest.split_at(declared);
    let mut hasher = seqdrift_store::crc32::Crc32::new();
    hasher.update(header);
    hasher.update(payload);
    let expected = hasher.finish();
    let got = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if expected != got {
        return Err(ProtoError::BadCrc { expected, got });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(ProtoError::VersionSkew(version));
    }
    let kind = FrameType::from_u8(header[6]).ok_or(ProtoError::UnknownType(header[6]))?;
    let session = u64::from_le_bytes([
        header[8], header[9], header[10], header[11], header[12], header[13], header[14],
        header[15],
    ]);
    Ok(RawFrame {
        kind,
        flags: header[7],
        session,
        payload: payload.to_vec(),
    })
}

/// The most `dim`-wide rows that fit in one `Sample` frame: the payload
/// is an 8-byte count+dim prefix followed by the scalars, and must stay
/// within [`MAX_PAYLOAD`]. Senders must split batches at this bound —
/// the server rejects an oversized length prefix with a fatal NACK.
pub fn max_sample_rows(dim: u32) -> usize {
    if dim == 0 {
        return 0;
    }
    (MAX_PAYLOAD as usize - 8) / (dim as usize * core::mem::size_of::<Real>())
}

/// Extracts and bounds the payload length from a header. The caller must
/// reject [`ProtoError::Oversized`] *before* allocating a payload buffer.
pub fn header_payload_len(header: &[u8; HEADER_LEN]) -> Result<usize, ProtoError> {
    let n = u32::from_le_bytes([header[16], header[17], header[18], header[19]]);
    if n > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(n));
    }
    Ok(n as usize)
}

/// Reads one complete frame from a blocking transport (client side; the
/// server uses its interruptible fill loop instead). Bounds the payload
/// allocation before reading it.
pub fn read_frame(r: &mut impl Read) -> Result<RawFrame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if &header[0..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let len = header_payload_len(&header)?;
    let mut rest = vec![0u8; len + CRC_LEN];
    r.read_exact(&mut rest)?;
    decode_frame(&header, &rest)
}

/// A typed protocol message, decoupled from the session id in the header.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Handshake: feature dimension and scalar width (`size_of::<Real>()`)
    /// the client will send.
    Hello {
        /// Feature dimension of every sample on this session.
        dim: u32,
        /// Bytes per scalar; catches f32/f64 build mismatches up front.
        scalar_width: u8,
    },
    /// A batch of `data.len() / dim` samples, rows concatenated.
    Sample {
        /// Feature dimension (must match the HELLO).
        dim: u32,
        /// Row-major concatenated samples.
        data: Vec<Real>,
    },
    /// Liveness probe.
    Ping,
    /// Fetch queued events for the session.
    Drain,
    /// Fetch the session's checkpoint blob.
    Snapshot,
    /// Orderly goodbye.
    Bye,
    /// Handshake accepted.
    HelloAck {
        /// True when the session already existed on the server (resumed
        /// from the durable store or created by an earlier connection).
        existing: bool,
        /// The session's live `samples_processed` at the handshake
        /// (0 for a freshly created session); the client replays its
        /// stream from this offset after any reconnect.
        resume_from: u64,
    },
    /// Batch fully applied.
    SampleAck {
        /// Rows applied (always the full batch for this reply).
        accepted: u32,
        /// Drift/fault events pushed back for this session, rendered as
        /// diagnostic strings.
        events: Vec<String>,
    },
    /// Liveness reply.
    Pong,
    /// Event fetch reply.
    DrainAck {
        /// Queued events for the session (plus engine-wide events).
        events: Vec<String>,
    },
    /// Checkpoint blob reply.
    SnapshotAck {
        /// The session's `seqdrift_core::persist` checkpoint blob.
        blob: Vec<u8>,
    },
    /// Backpressure reply: the shard queue stayed full past the deadline.
    Busy {
        /// Rows of the batch applied before the stall; retry from here.
        accepted: u32,
        /// Depth of the stalled shard queue at the deadline.
        queue_depth: u32,
    },
    /// Typed rejection.
    Nack {
        /// Why.
        code: NackCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl Message {
    /// The frame type this message travels as.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Message::Hello { .. } => FrameType::Hello,
            Message::Sample { .. } => FrameType::Sample,
            Message::Ping => FrameType::Ping,
            Message::Drain => FrameType::Drain,
            Message::Snapshot => FrameType::Snapshot,
            Message::Bye => FrameType::Bye,
            Message::HelloAck { .. } => FrameType::HelloAck,
            Message::SampleAck { .. } => FrameType::SampleAck,
            Message::Pong => FrameType::Pong,
            Message::DrainAck { .. } => FrameType::DrainAck,
            Message::SnapshotAck { .. } => FrameType::SnapshotAck,
            Message::Busy { .. } => FrameType::Busy,
            Message::Nack { .. } => FrameType::Nack,
        }
    }

    /// Encodes the message as a complete frame for `session`.
    pub fn encode(&self, session: u64) -> Vec<u8> {
        self.encode_flagged(session, 0)
    }

    /// Encodes the message as a complete frame with explicit flag bits.
    pub fn encode_flagged(&self, session: u64, flags: u8) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Message::Hello { dim, scalar_width } => {
                p.extend_from_slice(&dim.to_le_bytes());
                p.push(*scalar_width);
            }
            Message::Sample { dim, data } => {
                let count = if *dim == 0 {
                    0
                } else {
                    data.len() as u32 / dim
                };
                p.extend_from_slice(&count.to_le_bytes());
                p.extend_from_slice(&dim.to_le_bytes());
                for v in data {
                    p.extend_from_slice(&v.to_le_bytes());
                }
            }
            Message::Ping | Message::Drain | Message::Snapshot | Message::Bye | Message::Pong => {}
            Message::HelloAck {
                existing,
                resume_from,
            } => {
                p.push(u8::from(*existing));
                p.extend_from_slice(&resume_from.to_le_bytes());
            }
            Message::SampleAck { accepted, events } => {
                p.extend_from_slice(&accepted.to_le_bytes());
                encode_events(&mut p, events);
            }
            Message::DrainAck { events } => encode_events(&mut p, events),
            Message::SnapshotAck { blob } => {
                p.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                p.extend_from_slice(blob);
            }
            Message::Busy {
                accepted,
                queue_depth,
            } => {
                p.extend_from_slice(&accepted.to_le_bytes());
                p.extend_from_slice(&queue_depth.to_le_bytes());
            }
            Message::Nack { code, detail } => {
                p.push(*code as u8);
                let bytes = detail.as_bytes();
                let n = bytes.len().min(u16::MAX as usize);
                p.extend_from_slice(&(n as u16).to_le_bytes());
                p.extend_from_slice(&bytes[..n]);
            }
        }
        encode_frame(self.frame_type(), flags, session, &p)
    }

    /// Interprets a validated frame's payload. Every length prefix is
    /// checked against the bytes actually remaining before allocation.
    pub fn decode(frame: &RawFrame) -> Result<Message, ProtoError> {
        let mut c = Cursor::new(&frame.payload);
        let msg = match frame.kind {
            FrameType::Hello => {
                let dim = c.u32()?;
                let scalar_width = c.u8()?;
                Message::Hello { dim, scalar_width }
            }
            FrameType::Sample => {
                let count = c.u32()? as usize;
                let dim = c.u32()?;
                let scalars = count
                    .checked_mul(dim as usize)
                    .ok_or(ProtoError::BadPayload("sample count*dim overflows"))?;
                let bytes = scalars
                    .checked_mul(core::mem::size_of::<Real>())
                    .ok_or(ProtoError::BadPayload("sample byte length overflows"))?;
                if bytes != c.remaining() {
                    return Err(ProtoError::BadPayload("sample data length mismatch"));
                }
                let mut data = Vec::with_capacity(scalars);
                for _ in 0..scalars {
                    data.push(c.real()?);
                }
                Message::Sample { dim, data }
            }
            FrameType::Ping => Message::Ping,
            FrameType::Drain => Message::Drain,
            FrameType::Snapshot => Message::Snapshot,
            FrameType::Bye => Message::Bye,
            FrameType::HelloAck => {
                let existing = c.u8()? != 0;
                let resume_from = c.u64()?;
                Message::HelloAck {
                    existing,
                    resume_from,
                }
            }
            FrameType::SampleAck => {
                let accepted = c.u32()?;
                let events = decode_events(&mut c)?;
                Message::SampleAck { accepted, events }
            }
            FrameType::Pong => Message::Pong,
            FrameType::DrainAck => Message::DrainAck {
                events: decode_events(&mut c)?,
            },
            FrameType::SnapshotAck => {
                let n = c.u32()? as usize;
                if n != c.remaining() {
                    return Err(ProtoError::BadPayload("snapshot blob length mismatch"));
                }
                Message::SnapshotAck {
                    blob: c.take(n)?.to_vec(),
                }
            }
            FrameType::Busy => {
                let accepted = c.u32()?;
                let queue_depth = c.u32()?;
                Message::Busy {
                    accepted,
                    queue_depth,
                }
            }
            FrameType::Nack => {
                let code = NackCode::from_u8(c.u8()?)
                    .ok_or(ProtoError::BadPayload("unknown nack code"))?;
                let n = c.u16()? as usize;
                let detail = String::from_utf8_lossy(c.take(n)?).into_owned();
                Message::Nack { code, detail }
            }
        };
        if c.remaining() != 0 {
            return Err(ProtoError::BadPayload("trailing payload bytes"));
        }
        Ok(msg)
    }
}

fn encode_events(p: &mut Vec<u8>, events: &[String]) {
    p.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for e in events {
        let bytes = e.as_bytes();
        let n = bytes.len().min(u16::MAX as usize);
        p.extend_from_slice(&(n as u16).to_le_bytes());
        p.extend_from_slice(&bytes[..n]);
    }
}

fn decode_events(c: &mut Cursor<'_>) -> Result<Vec<String>, ProtoError> {
    let count = c.u32()? as usize;
    // Each event needs at least its 2-byte length prefix; a hostile count
    // larger than the remaining bytes is rejected before allocation.
    if count.saturating_mul(2) > c.remaining() {
        return Err(ProtoError::BadPayload("event count exceeds payload"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let n = c.u16()? as usize;
        out.push(String::from_utf8_lossy(c.take(n)?).into_owned());
    }
    Ok(out)
}

/// Bounds-checked payload cursor, following the `linalg::wire::Reader`
/// conventions (every read validates against the remaining bytes).
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if n > self.remaining() {
            return Err(ProtoError::BadPayload("field runs past payload end"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn real(&mut self) -> Result<Real, ProtoError> {
        const W: usize = core::mem::size_of::<Real>();
        let b = self.take(W)?;
        let mut arr = [0u8; W];
        arr.copy_from_slice(b);
        Ok(Real::from_le_bytes(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message, session: u64) {
        let bytes = msg.encode(session);
        let frame = read_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(frame.session, session);
        assert_eq!(Message::decode(&frame).unwrap(), msg);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(
            Message::Hello {
                dim: 38,
                scalar_width: core::mem::size_of::<Real>() as u8,
            },
            7,
        );
        roundtrip(
            Message::Sample {
                dim: 3,
                data: vec![0.25, -1.5, 3.75, 0.0, 1.0, -2.0],
            },
            42,
        );
        roundtrip(Message::Ping, 1);
        roundtrip(Message::Drain, 1);
        roundtrip(Message::Snapshot, 1);
        roundtrip(Message::Bye, 1);
        roundtrip(
            Message::HelloAck {
                existing: true,
                resume_from: 512,
            },
            7,
        );
        roundtrip(
            Message::SampleAck {
                accepted: 6,
                events: vec!["DriftDetected { at: 3 }".into()],
            },
            7,
        );
        roundtrip(Message::Pong, 0);
        roundtrip(Message::DrainAck { events: vec![] }, 9);
        roundtrip(
            Message::SnapshotAck {
                blob: vec![1, 2, 3, 4, 5],
            },
            9,
        );
        roundtrip(
            Message::Busy {
                accepted: 4,
                queue_depth: 128,
            },
            9,
        );
        roundtrip(
            Message::Nack {
                code: NackCode::DimMismatch,
                detail: "expected 38, got 4".into(),
            },
            9,
        );
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let bytes = Message::Ping.encode(1);
        for cut in 0..bytes.len() {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert!(matches!(err, ProtoError::Io(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn bit_flips_never_decode() {
        let bytes = Message::Sample {
            dim: 2,
            data: vec![1.0, 2.0],
        }
        .encode(3);
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            match read_frame(&mut corrupt.as_slice()) {
                Err(_) => {}
                // A flip in the length field can shorten the frame so the
                // CRC window moves; anything that still decodes must have
                // been caught... it must not, ever:
                Ok(_) => panic!("bit flip at {bit} decoded cleanly"),
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Message::Ping.encode(1);
        bytes[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ProtoError::Oversized(_)));
    }

    #[test]
    fn version_skew_on_clean_frame_only() {
        // A frame re-sealed with a future version decodes as skew...
        let mut bytes = Message::Ping.encode(1);
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        let n = bytes.len();
        let crc = crc32(&bytes[..n - CRC_LEN]);
        bytes[n - CRC_LEN..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(ProtoError::VersionSkew(2))
        ));
        // ...but a bit-flipped version byte without a matching CRC is
        // corruption, not skew.
        let mut flipped = Message::Ping.encode(1);
        flipped[4] ^= 0x02;
        assert!(matches!(
            read_frame(&mut flipped.as_slice()),
            Err(ProtoError::BadCrc { .. })
        ));
    }

    #[test]
    fn hostile_sample_counts_rejected() {
        // count*dim overflowing or exceeding the actual bytes must fail
        // without allocating.
        let mut p = Vec::new();
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        let bytes = encode_frame(FrameType::Sample, 0, 1, &p);
        let frame = read_frame(&mut bytes.as_slice()).unwrap();
        assert!(Message::decode(&frame).is_err());
    }

    #[test]
    fn hostile_event_count_rejected() {
        let mut p = Vec::new();
        p.extend_from_slice(&4u32.to_le_bytes()); // accepted
        p.extend_from_slice(&u32::MAX.to_le_bytes()); // event count
        let bytes = encode_frame(FrameType::SampleAck, 0, 1, &p);
        let frame = read_frame(&mut bytes.as_slice()).unwrap();
        assert!(Message::decode(&frame).is_err());
    }
}
