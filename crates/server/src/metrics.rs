//! Lock-free ingest counters, aggregated across every connection and
//! merged with the fleet's own [`seqdrift_fleet::MetricsSnapshot`] in the
//! final [`crate::ServerReport`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate network-layer counters. Connection handler threads bump
/// these with relaxed atomics; readers take a point-in-time
/// [`ServerMetricsSnapshot`].
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted since startup.
    pub connections_accepted: AtomicU64,
    /// Connections currently open.
    pub connections_active: AtomicU64,
    /// Connections dropped for exceeding the idle timeout.
    pub connections_evicted_idle: AtomicU64,
    /// Connections dropped after a fatal protocol error (corrupt or
    /// hostile byte stream).
    pub connections_dropped_protocol: AtomicU64,
    /// Frames successfully decoded.
    pub frames_rx: AtomicU64,
    /// Frames written.
    pub frames_tx: AtomicU64,
    /// Bytes read off accepted connections.
    pub bytes_rx: AtomicU64,
    /// Bytes written to connections.
    pub bytes_tx: AtomicU64,
    /// Sample rows applied to the fleet.
    pub samples_accepted: AtomicU64,
    /// BUSY replies sent (feed deadline exceeded under backpressure).
    pub busy_replies: AtomicU64,
    /// NACK replies sent (fatal and non-fatal).
    pub nacks_sent: AtomicU64,
    /// Sessions auto-created from the reference model on HELLO.
    pub sessions_created: AtomicU64,
    /// HELLOs for a session the server already knew: each one is a device
    /// reconnecting after a blip, an eviction, or a server restart.
    pub reconnects: AtomicU64,
    /// Sum of the live `resume_from` offsets acked on those reconnect
    /// HELLOs — samples the devices did *not* have to replay because the
    /// server's durable/live state already reflected them.
    pub resumed_samples: AtomicU64,
    /// Connections or frames refused by admission control (connection
    /// cap, per-IP accept-rate limit, bytes-in-flight cap).
    pub admission_rejections: AtomicU64,
    /// Connections dropped for not completing a HELLO inside the
    /// handshake deadline (half-open or deliberately trickling sockets).
    pub handshake_timeouts: AtomicU64,
}

impl ServerMetrics {
    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServerMetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServerMetricsSnapshot {
            connections_accepted: load(&self.connections_accepted),
            connections_active: load(&self.connections_active),
            connections_evicted_idle: load(&self.connections_evicted_idle),
            connections_dropped_protocol: load(&self.connections_dropped_protocol),
            frames_rx: load(&self.frames_rx),
            frames_tx: load(&self.frames_tx),
            bytes_rx: load(&self.bytes_rx),
            bytes_tx: load(&self.bytes_tx),
            samples_accepted: load(&self.samples_accepted),
            busy_replies: load(&self.busy_replies),
            nacks_sent: load(&self.nacks_sent),
            sessions_created: load(&self.sessions_created),
            reconnects: load(&self.reconnects),
            resumed_samples: load(&self.resumed_samples),
            admission_rejections: load(&self.admission_rejections),
            handshake_timeouts: load(&self.handshake_timeouts),
        }
    }
}

/// Point-in-time copy of [`ServerMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerMetricsSnapshot {
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections dropped for exceeding the idle timeout.
    pub connections_evicted_idle: u64,
    /// Connections dropped after a fatal protocol error.
    pub connections_dropped_protocol: u64,
    /// Frames successfully decoded.
    pub frames_rx: u64,
    /// Frames written.
    pub frames_tx: u64,
    /// Bytes read off accepted connections.
    pub bytes_rx: u64,
    /// Bytes written to connections.
    pub bytes_tx: u64,
    /// Sample rows applied to the fleet.
    pub samples_accepted: u64,
    /// BUSY replies sent.
    pub busy_replies: u64,
    /// NACK replies sent.
    pub nacks_sent: u64,
    /// Sessions auto-created from the reference model on HELLO.
    pub sessions_created: u64,
    /// HELLOs for an already-known session (device reconnects).
    pub reconnects: u64,
    /// Samples skipped by reconnecting devices thanks to acked
    /// `resume_from` offsets.
    pub resumed_samples: u64,
    /// Connections or frames refused by admission control.
    pub admission_rejections: u64,
    /// Connections dropped at the handshake deadline.
    pub handshake_timeouts: u64,
}
