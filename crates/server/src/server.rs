//! The ingest server: a `std::net::TcpListener` accept loop spawning one
//! reader thread per device connection, all feeding a single shared
//! [`FleetEngine`].
//!
//! Lifecycle:
//!
//! 1. [`Server::bind`] opens the listener, builds the fleet (resuming
//!    every surviving session from the durable store when
//!    `FleetConfig::state_dir` is set), and decodes the reference model's
//!    dimension once so HELLO handshakes can be validated cheaply.
//! 2. [`Server::run`] accepts connections until the caller's stop
//!    predicate fires (the CLI wires this to its SIGINT flag), then
//!    drains: the listener stops accepting, every connection handler
//!    notices the shared stop flag at its next read tick and closes, the
//!    handlers are joined, and the fleet is shut down — which flushes
//!    each surviving session's final state to the durable store, so a
//!    graceful drain loses zero samples.
//!
//! Backpressure is end-to-end: connection handlers call
//! [`FleetEngine::feed_blocking`], and a feed deadline exceeded under a
//! full shard queue becomes a `Busy` reply naming the partial progress
//! and the stalled queue's depth — the client retries the remainder.
//! Slow or silent clients are evicted after `idle_timeout` without
//! affecting any other connection.
//!
//! Admission control guards the front door ([`AdmissionConfig`]): a
//! connection cap and a per-IP accept-rate token bucket shed reconnect
//! storms at accept time with a typed `AdmissionLimit` NACK (cheap: no
//! handler thread is ever spawned for a shed connection); a
//! bytes-in-flight cap turns aggregate memory pressure into `Busy`
//! replies before buffers balloon; and a handshake deadline drops
//! sockets that connect but never complete a HELLO, so half-open or
//! deliberately trickling clients cannot pin reader threads.
//!
//! Reconnects are fenced per session: each successful HELLO bumps the
//! session's epoch after waiting out any batch mid-apply, and sample
//! frames carry their connection's epoch implicitly (via the handler's
//! handshake record). A zombie handler — one whose client already
//! re-HELLOed elsewhere after a network fault — that later tries to feed
//! a delayed frame is rejected with a fatal `Superseded` NACK instead of
//! double-applying rows the new connection is about to replay. Combined
//! with the live resume offset in `HelloAck`, this makes delivery
//! exactly-once across arbitrary connection failures: one live
//! connection feeds a session at a time.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use seqdrift_core::DriftPipeline;
use seqdrift_federate::Federator;
use seqdrift_fleet::{
    DurabilityHealth, FleetConfig, FleetEngine, FleetError, FleetEvent, MetricsSnapshot,
    RecoveryReport, SessionId, ShutdownReport,
};
use seqdrift_linalg::Real;

use crate::metrics::{ServerMetrics, ServerMetricsSnapshot};
use crate::proto::{
    decode_frame, header_payload_len, Message, NackCode, CRC_LEN, HEADER_LEN, MAGIC,
};
use crate::recorder::ScenarioRecorder;

/// Session id key for events not attributable to any session (e.g. a
/// worker respawn): delivered to whichever connection drains next.
const GLOBAL_EVENTS: u64 = u64::MAX;

/// Front-door limits. Defaults are generous enough that well-behaved
/// fleets never notice them; zero disables an individual limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Hard cap on concurrently open connections; further accepts are
    /// shed with an `AdmissionLimit` NACK before a handler thread is
    /// spawned. 0 = unlimited.
    pub max_connections: usize,
    /// Sustained accepts per second tolerated from one source IP (token
    /// bucket refill rate). 0 = unlimited.
    pub per_ip_accepts_per_sec: f64,
    /// Token bucket capacity: the burst of accepts one IP may spend at
    /// once before the sustained rate applies.
    pub per_ip_accept_burst: u32,
    /// Cap on sample payload bytes concurrently buffered across all
    /// connections (read off the wire, not yet acknowledged). Frames over
    /// the cap get a zero-progress `Busy` reply — except that a frame
    /// arriving when nothing is in flight is always admitted, so the cap
    /// can shed load but never livelock. 0 = unlimited.
    pub max_bytes_in_flight: u64,
    /// A new connection must complete its first HELLO within this window
    /// or it is dropped (counted in `handshake_timeouts`).
    pub handshake_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_connections: 1024,
            per_ip_accepts_per_sec: 0.0,
            per_ip_accept_burst: 64,
            max_bytes_in_flight: 256 << 20,
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fleet engine parameters (workers, queues, durability, ...).
    pub fleet: FleetConfig,
    /// Reference checkpoint blob: sessions HELLOed for the first time are
    /// created from this calibrated state. `None` means only sessions
    /// resumed from the durable store (or created in-process) exist, and
    /// an unknown HELLO is NACKed.
    pub reference: Option<Vec<u8>>,
    /// Connections silent for longer than this are evicted.
    pub idle_timeout: Duration,
    /// Granularity of the handler read loop: how often a blocked read
    /// wakes to check the stop flag and the idle deadline.
    pub read_tick: Duration,
    /// Front-door admission limits.
    pub admission: AdmissionConfig,
    /// When set, every accepted sample row (plus connection events) is
    /// recorded and written into this directory at drain time as a
    /// replayable `.sqsc` scenario bundle.
    pub record: Option<std::path::PathBuf>,
}

impl ServerConfig {
    /// Defaults: the given fleet config, no reference model, 30-second
    /// idle eviction, 25 ms read tick.
    pub fn new(fleet: FleetConfig) -> Self {
        ServerConfig {
            fleet,
            reference: None,
            idle_timeout: Duration::from_secs(30),
            read_tick: Duration::from_millis(25),
            admission: AdmissionConfig::default(),
            record: None,
        }
    }

    /// Installs the reference checkpoint blob for HELLO auto-creation.
    pub fn with_reference(mut self, blob: Vec<u8>) -> Self {
        self.reference = Some(blob);
        self
    }

    /// Overrides the idle-eviction timeout.
    pub fn with_idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Overrides the front-door admission limits.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Records live ingest into `dir` as a replayable scenario bundle.
    pub fn with_record(mut self, dir: std::path::PathBuf) -> Self {
        self.record = Some(dir);
        self
    }
}

/// Errors raised while binding or running the server.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Fleet construction or resume failure.
    Fleet(FleetError),
    /// The reference checkpoint blob did not decode.
    BadReference(String),
    /// Federation was requested (the fleet config carries a
    /// `FederationConfig`) but could not be set up.
    Federation(String),
}

impl core::fmt::Display for ServerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "socket error: {e}"),
            ServerError::Fleet(e) => write!(f, "fleet error: {e}"),
            ServerError::BadReference(e) => write!(f, "reference checkpoint invalid: {e}"),
            ServerError::Federation(e) => write!(f, "federation setup failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<FleetError> for ServerError {
    fn from(e: FleetError) -> Self {
        ServerError::Fleet(e)
    }
}

/// Everything the server produced, returned by [`Server::run`] after the
/// drain completes.
#[derive(Debug)]
pub struct ServerReport {
    /// The fleet's own shutdown report (surviving sessions, quarantined,
    /// lost, events, engine counters). On a graceful drain every
    /// survivor's final state has been flushed to the durable store.
    pub fleet: ShutdownReport,
    /// Network-layer counters.
    pub net: ServerMetricsSnapshot,
    /// Sessions resumed from the durable store at bind time, as
    /// `(session, samples_processed)`.
    pub resumed: Vec<(u64, u64)>,
    /// Outcome of the ingest recording, when one was requested: the path
    /// of the written `.sqsc` manifest, or why the bundle write failed
    /// (e.g. nothing was recorded).
    pub recording: Option<std::result::Result<std::path::PathBuf, String>>,
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    fleet: FleetEngine,
    reference: Option<Vec<u8>>,
    /// Feature dimension of the reference model (decoded once at bind).
    ref_dim: Option<u32>,
    /// Sessions known to exist in the engine (resumed or created). HELLO
    /// consults this before attempting creation.
    known: RwLock<HashSet<u64>>,
    /// `samples_processed` at resume, reported in `HelloAck::resume_from`.
    resumed: HashMap<u64, u64>,
    /// Per-session event buckets fed from `FleetEngine::drain_events`.
    events: Mutex<HashMap<u64, Vec<String>>>,
    metrics: ServerMetrics,
    stop: AtomicBool,
    idle_timeout: Duration,
    read_tick: Duration,
    admission: AdmissionConfig,
    /// Live-ingest tap writing a replayable scenario bundle at drain.
    recorder: Option<ScenarioRecorder>,
    /// Sample payload bytes read off the wire and not yet acknowledged,
    /// across all connections (the bytes-in-flight admission gauge).
    bytes_in_flight: AtomicU64,
    /// Per-session connection fences (see [`SessionGate`]).
    gates: Mutex<HashMap<u64, SessionGate>>,
}

/// Per-session connection fence. `epoch` names the connection most
/// recently granted the session by a HELLO; `feeding` counts batches
/// currently mid-apply, so a fence can wait for in-flight rows to land
/// before the new connection queries its resume offset.
struct SessionGate {
    feeding: u32,
    epoch: u64,
}

impl Shared {
    /// Moves newly logged fleet events into per-session buckets.
    fn pump_events(&self) {
        let drained = self.fleet.drain_events();
        if drained.is_empty() {
            return;
        }
        let mut buckets = match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for event in drained {
            let key = match &event {
                FleetEvent::Pipeline { id, .. }
                | FleetEvent::SessionPanicked { id, .. }
                | FleetEvent::SessionRestored { id, .. }
                | FleetEvent::SessionQuarantined { id, .. }
                | FleetEvent::SessionExcludedLowTrust { id, .. } => id.0,
                _ => GLOBAL_EVENTS,
            };
            buckets.entry(key).or_default().push(format!("{event:?}"));
        }
    }

    /// Takes the session's queued events plus any engine-wide events.
    fn take_events(&self, session: u64) -> Vec<String> {
        let mut buckets = match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut out = buckets.remove(&session).unwrap_or_default();
        if let Some(global) = buckets.remove(&GLOBAL_EVENTS) {
            out.extend(global);
        }
        out
    }

    /// Whether the session has more events queued after a take.
    fn events_pending(&self, session: u64) -> bool {
        match self.events.lock() {
            Ok(g) => g.contains_key(&session),
            Err(poisoned) => poisoned.into_inner().contains_key(&session),
        }
    }

    fn lock_gates(&self) -> std::sync::MutexGuard<'_, HashMap<u64, SessionGate>> {
        match self.gates.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Claims the session for a new connection: waits (up to `deadline`)
    /// for any batch mid-apply on an older connection to finish, then
    /// bumps the epoch. Frames still buffered on older connections are
    /// rejected by [`Shared::begin_feed`] from this point on. `Err` means
    /// an older handler held the feed past the deadline (it is stuck in
    /// backpressure); the caller turns that into a retryable BUSY.
    fn fence_session(&self, session: u64, deadline: Instant) -> Result<u64, ()> {
        loop {
            {
                let mut gates = self.lock_gates();
                let gate = gates.entry(session).or_insert(SessionGate {
                    feeding: 0,
                    epoch: 0,
                });
                if gate.feeding == 0 {
                    gate.epoch += 1;
                    return Ok(gate.epoch);
                }
            }
            if Instant::now() >= deadline {
                return Err(());
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Enters a feed for the given connection epoch. `false` means a
    /// newer connection has fenced this one; the caller must NOT apply
    /// the batch (and must not call [`Shared::end_feed`]).
    fn begin_feed(&self, session: u64, epoch: u64) -> bool {
        let mut gates = self.lock_gates();
        match gates.get_mut(&session) {
            Some(gate) if gate.epoch == epoch => {
                gate.feeding += 1;
                true
            }
            _ => false,
        }
    }

    /// Leaves a feed entered by [`Shared::begin_feed`].
    fn end_feed(&self, session: u64) {
        let mut gates = self.lock_gates();
        if let Some(gate) = gates.get_mut(&session) {
            gate.feeding = gate.feeding.saturating_sub(1);
        }
    }
}

/// The ingest server. Bind, then [`Server::run`] until stopped.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    /// Present when the fleet config carries a `FederationConfig`:
    /// [`Server::run`] spawns a background thread driving merge rounds
    /// against the shared fleet.
    federator: Option<Federator>,
}

impl Server {
    /// Binds the listener, builds the fleet engine, and — when the fleet
    /// config carries a `state_dir` — resumes every surviving session
    /// from the durable store.
    pub fn bind(addr: &str, cfg: ServerConfig) -> Result<Server, ServerError> {
        let ref_dim = match &cfg.reference {
            Some(blob) => Some(
                DriftPipeline::from_bytes(blob)
                    .map_err(|e| ServerError::BadReference(e.to_string()))?
                    .model()
                    .dim() as u32,
            ),
            None => None,
        };
        let durable = cfg.fleet.state_dir.is_some();
        let fleet = FleetEngine::new(cfg.fleet)?;
        let mut resumed = HashMap::new();
        if durable {
            for (id, samples) in fleet.resume()? {
                resumed.insert(id.0, samples);
            }
        }
        let federator = match (fleet.federation().is_some(), &cfg.reference) {
            (false, _) => None,
            (true, None) => {
                return Err(ServerError::Federation(
                    "federation requires a reference checkpoint".into(),
                ))
            }
            (true, Some(blob)) => Some(
                Federator::new(&fleet, blob).map_err(|e| ServerError::Federation(e.to_string()))?,
            ),
        };
        let known: HashSet<u64> = resumed.keys().copied().collect();
        let recorder = cfg.record.as_deref().map(|dir| {
            let rec = ScenarioRecorder::new(dir);
            if let Some(blob) = &cfg.reference {
                rec.set_reference(blob);
            }
            rec
        });
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            federator,
            shared: Arc::new(Shared {
                fleet,
                reference: cfg.reference,
                ref_dim,
                known: RwLock::new(known),
                resumed,
                events: Mutex::new(HashMap::new()),
                metrics: ServerMetrics::default(),
                stop: AtomicBool::new(false),
                idle_timeout: cfg.idle_timeout,
                read_tick: cfg.read_tick,
                admission: cfg.admission,
                recorder,
                bytes_in_flight: AtomicU64::new(0),
                gates: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The bound address (use with `127.0.0.1:0` to discover the
    /// ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time network counters (the fleet's own counters are in
    /// the final report).
    pub fn metrics(&self) -> ServerMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Point-in-time fleet counters.
    pub fn fleet_metrics(&self) -> MetricsSnapshot {
        self.shared.fleet.metrics()
    }

    /// What the durable store's bind-time recovery scan found and
    /// repaired; `None` when the fleet runs memory-only.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.shared.fleet.recovery_report()
    }

    /// The fleet's current durability health (always `Durable` for a
    /// memory-only fleet).
    pub fn durability_health(&self) -> DurabilityHealth {
        self.shared.fleet.durability_health()
    }

    /// Serves until `stop_requested` returns true, then drains: stops
    /// accepting, signals every handler, joins them, and shuts the fleet
    /// down (flushing durable state). Never panics on connection errors —
    /// a failed accept is retried, a failed handler only loses its own
    /// connection.
    pub fn run<F: Fn() -> bool>(mut self, stop_requested: F) -> ServerReport {
        // Non-blocking so the accept loop can poll the stop predicate.
        let nonblocking_ok = self.listener.set_nonblocking(true).is_ok();
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        // Federation poller: checks the sample interval every read tick
        // and runs a merge round when it elapses. Holds its own clone of
        // the shared state, so it MUST be joined before the drain's
        // `Arc::try_unwrap` below.
        let federation = self.federator.take().map(|mut federator| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                while !shared.stop.load(Ordering::Relaxed) {
                    // Engine-level failures (shutdown races) end polling;
                    // per-session outcomes are absorbed into the fleet
                    // counters by the federator itself.
                    if federator.maybe_round(&shared.fleet).is_err() {
                        break;
                    }
                    std::thread::sleep(shared.read_tick);
                }
            })
        });
        // Per-IP accept-rate token buckets. The accept loop is single-
        // threaded, so plain HashMap state suffices — no lock, no atomics.
        let mut buckets: HashMap<IpAddr, TokenBucket> = HashMap::new();
        while !stop_requested() {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let shared = Arc::clone(&self.shared);
                    shared
                        .metrics
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(detail) = admission_verdict(&shared, peer.ip(), &mut buckets) {
                        shed_connection(stream, &shared, &detail);
                        continue;
                    }
                    shared
                        .metrics
                        .connections_active
                        .fetch_add(1, Ordering::Relaxed);
                    handles.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                        shared
                            .metrics
                            .connections_active
                            .fetch_sub(1, Ordering::Relaxed);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE): back off and
                    // keep serving existing connections.
                    std::thread::sleep(Duration::from_millis(50));
                    if !nonblocking_ok {
                        break;
                    }
                }
            }
            // Reap finished handlers so a long-lived server does not
            // accumulate join handles.
            if handles.iter().any(|h| h.is_finished()) {
                handles = handles
                    .into_iter()
                    .filter_map(|h| {
                        if h.is_finished() {
                            let _ = h.join();
                            None
                        } else {
                            Some(h)
                        }
                    })
                    .collect();
            }
        }
        // Drain: signal the handlers, join them, shut the fleet down.
        self.shared.stop.store(true, Ordering::SeqCst);
        for h in handles {
            let _ = h.join();
        }
        if let Some(h) = federation {
            let _ = h.join();
        }
        let net = self.shared.metrics.snapshot();
        let mut resumed: Vec<(u64, u64)> = self
            .shared
            .resumed
            .iter()
            .map(|(&id, &s)| (id, s))
            .collect();
        resumed.sort_unstable();
        let (fleet_report, recording) = match Arc::try_unwrap(self.shared) {
            Ok(shared) => {
                // The bundle is written before the fleet shuts down so a
                // shutdown panic cannot lose the captured streams.
                let recording = shared.recorder.as_ref().map(ScenarioRecorder::finish);
                (shared.fleet.shutdown(), recording)
            }
            // Unreachable once every handler is joined; returning an
            // empty report keeps this path panic-free regardless.
            Err(shared) => (
                ShutdownReport {
                    sessions: Vec::new(),
                    quarantined: shared.fleet.quarantined_sessions(),
                    lost: Vec::new(),
                    events: shared.fleet.drain_events(),
                    metrics: shared.fleet.metrics(),
                },
                None,
            ),
        };
        ServerReport {
            fleet: fleet_report,
            net,
            resumed,
            recording,
        }
    }
}

/// Token bucket for one source IP's accept rate.
struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

/// Checks the connection cap and the per-IP accept rate. Returns the
/// rejection detail when the connection must be shed, `None` to admit.
fn admission_verdict(
    shared: &Shared,
    peer: IpAddr,
    buckets: &mut HashMap<IpAddr, TokenBucket>,
) -> Option<String> {
    let adm = &shared.admission;
    if adm.max_connections > 0 {
        let active = shared.metrics.connections_active.load(Ordering::Relaxed);
        if active >= adm.max_connections as u64 {
            return Some(format!("connection limit {} reached", adm.max_connections));
        }
    }
    if adm.per_ip_accepts_per_sec > 0.0 {
        let burst = f64::from(adm.per_ip_accept_burst.max(1));
        let now = Instant::now();
        // Bound the map against address-hopping sources: drop buckets
        // that have refilled to full (they carry no history worth keeping).
        if buckets.len() > 4096 {
            let rate = adm.per_ip_accepts_per_sec;
            buckets.retain(|_, b| {
                (b.tokens + now.duration_since(b.last_refill).as_secs_f64() * rate) < burst
            });
        }
        let bucket = buckets.entry(peer).or_insert(TokenBucket {
            tokens: burst,
            last_refill: now,
        });
        bucket.tokens = (bucket.tokens
            + now.duration_since(bucket.last_refill).as_secs_f64() * adm.per_ip_accepts_per_sec)
            .min(burst);
        bucket.last_refill = now;
        if bucket.tokens < 1.0 {
            return Some(format!(
                "accept rate limit for {peer} ({}/s, burst {})",
                adm.per_ip_accepts_per_sec, adm.per_ip_accept_burst
            ));
        }
        bucket.tokens -= 1.0;
    }
    None
}

/// Rejects a connection at the front door: best-effort `AdmissionLimit`
/// NACK (short write timeout so a hostile receiver cannot stall the
/// accept loop), then drop. No handler thread is ever spawned.
fn shed_connection(mut stream: TcpStream, shared: &Shared, detail: &str) {
    shared
        .metrics
        .admission_rejections
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics.nacks_sent.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(
        &Message::Nack {
            code: NackCode::AdmissionLimit,
            detail: detail.into(),
        }
        .encode(0),
    );
}

/// Outcome of an interruptible exact read.
enum Fill {
    /// Buffer filled.
    Done,
    /// Peer closed the connection cleanly before the first byte.
    Eof,
    /// No bytes for longer than the idle timeout (or the peer trickled
    /// and then stalled mid-frame).
    Idle,
    /// The handshake deadline passed before the first HELLO completed.
    Expired,
    /// The server is draining.
    Stopped,
    /// Transport error.
    Failed,
}

/// Reads exactly `buf.len()` bytes, waking every read tick to check the
/// stop flag and the idle deadline. Partial progress is kept across
/// ticks, so a slow-but-live client is fine as long as bytes keep
/// arriving inside the idle window. `deadline` is the absolute handshake
/// deadline: unlike the idle window it does NOT reset on progress, so a
/// client trickling one byte per tick cannot hold a pre-HELLO connection
/// open indefinitely.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    deadline: Option<Instant>,
) -> Fill {
    let mut got = 0usize;
    let mut last_byte = Instant::now();
    while got < buf.len() {
        if shared.stop.load(Ordering::Relaxed) {
            return Fill::Stopped;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Fill::Expired;
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => return if got == 0 { Fill::Eof } else { Fill::Failed },
            Ok(n) => {
                got += n;
                last_byte = Instant::now();
                shared
                    .metrics
                    .bytes_rx
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_byte.elapsed() >= shared.idle_timeout {
                    return Fill::Idle;
                }
                // If the socket is secretly nonblocking (read timeout
                // ineffective), the read returned instantly — sleep so
                // an idle connection ticks instead of spinning a core.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Fill::Failed,
        }
    }
    Fill::Done
}

/// Writes a reply frame, counting it. Returns false when the transport
/// failed (the caller drops the connection).
fn send(stream: &mut TcpStream, shared: &Shared, bytes: &[u8]) -> bool {
    if stream.write_all(bytes).is_err() {
        return false;
    }
    shared.metrics.frames_tx.fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .bytes_tx
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    true
}

/// Sends a NACK; returns whether the connection should stay open.
fn send_nack(
    stream: &mut TcpStream,
    shared: &Shared,
    session: u64,
    code: NackCode,
    detail: String,
) -> bool {
    shared.metrics.nacks_sent.fetch_add(1, Ordering::Relaxed);
    let ok = send(
        stream,
        shared,
        &Message::Nack { code, detail }.encode(session),
    );
    if code.is_fatal() {
        shared
            .metrics
            .connections_dropped_protocol
            .fetch_add(1, Ordering::Relaxed);
        return false;
    }
    ok
}

/// One connection's lifecycle: runs the read-dispatch-reply loop, then —
/// when a recorder is attached — logs a `disconnect` event for every
/// session that was still live on the connection when it ended (an
/// orderly BYE removes the session from the map first).
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut helloed: HashMap<u64, (u32, u64)> = HashMap::new();
    connection_loop(stream, shared, &mut helloed);
    if let Some(rec) = &shared.recorder {
        for &session in helloed.keys() {
            rec.on_disconnect(session);
        }
    }
}

/// One connection's read-dispatch-reply loop. Strictly request/response:
/// the handler owns both directions of the stream, so replies (including
/// event push-backs riding on acks) never interleave.
fn connection_loop(mut stream: TcpStream, shared: &Shared, helloed: &mut HashMap<u64, (u32, u64)>) {
    // On some platforms (notably Windows) accepted sockets inherit the
    // listener's nonblocking flag, which would make the read timeout
    // below ineffective; clear it explicitly.
    let _ = stream.set_nonblocking(false);
    // Short read timeout turns blocked reads into ticks of `fill`.
    if stream.set_read_timeout(Some(shared.read_tick)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    // Until the first HELLO completes, every read races this absolute
    // deadline; a half-open or trickling socket is dropped at it.
    let mut handshake_deadline = (shared.admission.handshake_timeout > Duration::ZERO)
        .then(|| Instant::now() + shared.admission.handshake_timeout);
    loop {
        let mut header = [0u8; HEADER_LEN];
        match fill(&mut stream, &mut header, shared, handshake_deadline) {
            Fill::Done => {}
            Fill::Idle => {
                shared
                    .metrics
                    .connections_evicted_idle
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            Fill::Expired => {
                shared
                    .metrics
                    .handshake_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            Fill::Eof | Fill::Stopped | Fill::Failed => return,
        }
        // Magic and length bound are checked before the payload buffer is
        // allocated, so a hostile length prefix cannot balloon memory.
        if &header[0..4] != MAGIC {
            send_nack(
                &mut stream,
                shared,
                0,
                NackCode::BadMagic,
                "not an SQNP frame".into(),
            );
            return;
        }
        let payload_len = match header_payload_len(&header) {
            Ok(n) => n,
            Err(e) => {
                send_nack(&mut stream, shared, 0, e.nack_code(), e.to_string());
                return;
            }
        };
        let mut rest = vec![0u8; payload_len + CRC_LEN];
        match fill(&mut stream, &mut rest, shared, handshake_deadline) {
            Fill::Done => {}
            Fill::Idle => {
                shared
                    .metrics
                    .connections_evicted_idle
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            Fill::Expired => {
                shared
                    .metrics
                    .handshake_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            Fill::Eof | Fill::Stopped | Fill::Failed => return,
        }
        let frame = match decode_frame(&header, &rest) {
            Ok(f) => f,
            Err(e) => {
                // Framing errors are fatal (the stream cannot resync);
                // send_nack drops the connection for those codes.
                let stay = send_nack(&mut stream, shared, 0, e.nack_code(), e.to_string());
                if stay {
                    continue;
                }
                return;
            }
        };
        shared.metrics.frames_rx.fetch_add(1, Ordering::Relaxed);
        let session = frame.session;
        let msg = match Message::decode(&frame) {
            Ok(m) => m,
            Err(e) => {
                if send_nack(&mut stream, shared, session, e.nack_code(), e.to_string()) {
                    continue;
                }
                return;
            }
        };
        match msg {
            Message::Hello { dim, scalar_width } => {
                match handle_hello(shared, session, dim, scalar_width) {
                    Ok((reply, epoch)) => {
                        helloed.insert(session, (dim, epoch));
                        if let Some(rec) = &shared.recorder {
                            rec.on_hello(session, dim);
                        }
                        // Handshake complete: from here the idle window
                        // alone governs the connection's lifetime.
                        handshake_deadline = None;
                        if !send(&mut stream, shared, &reply.encode(session)) {
                            return;
                        }
                    }
                    Err((code, detail)) => {
                        if !send_nack(&mut stream, shared, session, code, detail) {
                            return;
                        }
                    }
                }
            }
            Message::Sample { dim, data } => {
                // Bytes-in-flight admission: the frame's payload counts
                // against the aggregate cap from decode until the reply
                // is on the wire. A frame arriving when nothing is in
                // flight is always admitted (progress guarantee), so the
                // cap sheds load without ever livelocking a lone client.
                let frame_bytes = payload_len as u64;
                let cap = shared.admission.max_bytes_in_flight;
                let prior = shared
                    .bytes_in_flight
                    .fetch_add(frame_bytes, Ordering::Relaxed);
                let over_cap = cap > 0 && prior > 0 && prior + frame_bytes > cap;
                let reply = if over_cap {
                    shared
                        .metrics
                        .admission_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    shared.metrics.busy_replies.fetch_add(1, Ordering::Relaxed);
                    Message::Busy {
                        accepted: 0,
                        queue_depth: 0,
                    }
                } else {
                    match helloed.get(&session) {
                        None => Message::Nack {
                            code: NackCode::NotHello,
                            detail: format!("no HELLO for session {session} on this connection"),
                        },
                        Some(&(hello_dim, _)) if dim != hello_dim || dim == 0 => Message::Nack {
                            code: NackCode::DimMismatch,
                            detail: format!("batch dim {dim} != handshake dim {hello_dim}"),
                        },
                        // The fence: a delayed frame from a connection the
                        // session has since re-HELLOed away from must not
                        // be applied — the new connection is replaying the
                        // unacked tail, so applying here would double-feed.
                        Some(&(_, epoch)) => {
                            if shared.begin_feed(session, epoch) {
                                let r = handle_samples(shared, session, dim as usize, &data);
                                shared.end_feed(session);
                                r
                            } else {
                                Message::Nack {
                                    code: NackCode::Superseded,
                                    detail: format!(
                                        "session {session} re-HELLOed on a newer connection"
                                    ),
                                }
                            }
                        }
                    }
                };
                let mut fatal_nack = false;
                if let Message::Nack { code, .. } = &reply {
                    shared.metrics.nacks_sent.fetch_add(1, Ordering::Relaxed);
                    fatal_nack = code.is_fatal();
                }
                let flags = if matches!(reply, Message::SampleAck { .. })
                    && shared.events_pending(session)
                {
                    crate::proto::FLAG_EVENTS_PENDING
                } else {
                    0
                };
                let sent = send(&mut stream, shared, &reply.encode_flagged(session, flags));
                shared
                    .bytes_in_flight
                    .fetch_sub(frame_bytes, Ordering::Relaxed);
                if fatal_nack {
                    shared
                        .metrics
                        .connections_dropped_protocol
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                if !sent {
                    return;
                }
            }
            Message::Ping => {
                if !send(&mut stream, shared, &Message::Pong.encode(session)) {
                    return;
                }
            }
            Message::Drain => {
                shared.pump_events();
                let events = shared.take_events(session);
                if !send(
                    &mut stream,
                    shared,
                    &Message::DrainAck { events }.encode(session),
                ) {
                    return;
                }
            }
            Message::Snapshot => {
                let reply = match shared.fleet.snapshot(SessionId(session)) {
                    Ok(blob) if blob.len() as u32 > crate::proto::MAX_PAYLOAD - 64 => {
                        Message::Nack {
                            code: NackCode::Internal,
                            detail: "snapshot exceeds frame limit".into(),
                        }
                    }
                    Ok(blob) => Message::SnapshotAck { blob },
                    Err(e) => Message::Nack {
                        code: fleet_nack_code(&e),
                        detail: e.to_string(),
                    },
                };
                if matches!(reply, Message::Nack { .. }) {
                    shared.metrics.nacks_sent.fetch_add(1, Ordering::Relaxed);
                }
                if !send(&mut stream, shared, &reply.encode(session)) {
                    return;
                }
            }
            Message::Bye => {
                if let Some(rec) = &shared.recorder {
                    rec.on_bye(session);
                    // An orderly goodbye is not a disconnect.
                    helloed.remove(&session);
                }
                return;
            }
            // A client must not send server-side frame types; treat as a
            // semantic error, not corruption.
            Message::HelloAck { .. }
            | Message::SampleAck { .. }
            | Message::Pong
            | Message::DrainAck { .. }
            | Message::SnapshotAck { .. }
            | Message::Busy { .. }
            | Message::Nack { .. } => {
                if !send_nack(
                    &mut stream,
                    shared,
                    session,
                    NackCode::BadPayload,
                    "server-to-client frame type sent by client".into(),
                ) {
                    return;
                }
            }
        }
    }
}

/// HELLO: validate scalar width and dimension, fence the session to this
/// connection, then find or create it. Creation races between
/// connections are benign: the loser's `DuplicateSession` is treated as
/// "already exists". On success returns the reply plus the fence epoch
/// the connection feeds under.
fn handle_hello(
    shared: &Shared,
    session: u64,
    dim: u32,
    scalar_width: u8,
) -> Result<(Message, u64), (NackCode, String)> {
    let width = core::mem::size_of::<Real>() as u8;
    if scalar_width != width {
        return Err((
            NackCode::ScalarWidth,
            format!("server scalars are {width} bytes, client sent {scalar_width}"),
        ));
    }
    if let Some(ref_dim) = shared.ref_dim {
        if dim != ref_dim {
            return Err((
                NackCode::DimMismatch,
                format!("server model dim {ref_dim}, client declared {dim}"),
            ));
        }
    }
    if shared
        .fleet
        .quarantined_sessions()
        .iter()
        .any(|(id, _)| id.0 == session)
    {
        return Err((
            NackCode::Quarantined,
            format!("session {session} is quarantined"),
        ));
    }
    let query_timeout = shared
        .admission
        .handshake_timeout
        .max(Duration::from_secs(1));
    // Fence BEFORE the resume query: any batch an older connection has
    // mid-apply lands first, so the offset reported below reflects every
    // row the server will ever apply from that connection — and the fence
    // epoch guarantees no later frame from it can be applied afterwards.
    let Ok(epoch) = shared.fence_session(session, Instant::now() + query_timeout) else {
        return Err((
            NackCode::Busy,
            format!("session {session} busy mid-batch; retry handshake"),
        ));
    };
    let already_known = {
        let known = match shared.known.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        known.contains(&session)
    };
    if already_known {
        // Report the session's *live* applied-sample count, not the
        // bind-time resume offset: the session may have been fed since it
        // was resumed (or created after bind). The query travels the
        // shard FIFO, so every sample a previous connection fed is
        // reflected — a reconnecting device replays exactly the tail the
        // server has not seen, never re-applying samples. The query is
        // deadline-bounded: during a reconnect storm against a stalled
        // shard, an unbounded wait here would pin one handler thread per
        // re-HELLO; a timeout becomes a non-fatal BUSY NACK instead, and
        // the client retries the handshake with backoff.
        match shared
            .fleet
            .samples_processed_within(SessionId(session), query_timeout)
        {
            Ok(resume_from) => {
                shared.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .resumed_samples
                    .fetch_add(resume_from, Ordering::Relaxed);
                return Ok((
                    Message::HelloAck {
                        existing: true,
                        resume_from,
                    },
                    epoch,
                ));
            }
            // The engine lost the session (worker died with no usable
            // checkpoint): fall through and re-create from the reference
            // as for a never-seen id, so the device can start over.
            Err(FleetError::UnknownSession(_)) => {}
            Err(FleetError::Timeout { queue_depth, .. }) => {
                return Err((
                    NackCode::Busy,
                    format!("resume offset query timed out (queue depth {queue_depth})"),
                ))
            }
            Err(e) => return Err((fleet_nack_code(&e), e.to_string())),
        }
    }
    let Some(reference) = &shared.reference else {
        return Err((
            NackCode::UnknownSession,
            format!("session {session} unknown and no reference model is loaded"),
        ));
    };
    match shared
        .fleet
        .create_from_bytes(SessionId(session), reference)
    {
        Ok(()) => {
            shared
                .metrics
                .sessions_created
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(FleetError::DuplicateSession(_)) => {} // raced another conn
        Err(e) => return Err((fleet_nack_code(&e), e.to_string())),
    }
    match shared.known.write() {
        Ok(mut g) => {
            g.insert(session);
        }
        Err(poisoned) => {
            poisoned.into_inner().insert(session);
        }
    }
    Ok((
        Message::HelloAck {
            existing: false,
            resume_from: 0,
        },
        epoch,
    ))
}

/// Feeds a batch row by row through the blocking path. A timeout under
/// backpressure becomes a `Busy` reply carrying the partial progress and
/// the stalled queue's depth; other fleet errors become typed NACKs.
/// Every exit records its accepted prefix with the ingest recorder (when
/// one is attached), so a recorded bundle holds exactly the rows the
/// fleet applied — partial batches included.
fn handle_samples(shared: &Shared, session: u64, dim: usize, data: &[Real]) -> Message {
    if dim == 0 || !data.len().is_multiple_of(dim) {
        return Message::Nack {
            code: NackCode::BadPayload,
            detail: "sample data not a whole number of rows".into(),
        };
    }
    let record = |accepted: u32| {
        if let Some(rec) = &shared.recorder {
            rec.on_rows(session, dim, data, accepted as usize);
        }
    };
    let mut accepted: u32 = 0;
    for row in data.chunks_exact(dim) {
        match shared.fleet.feed_blocking(SessionId(session), row) {
            Ok(()) => accepted += 1,
            Err(FleetError::Timeout { queue_depth, .. }) => {
                shared.metrics.busy_replies.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .samples_accepted
                    .fetch_add(u64::from(accepted), Ordering::Relaxed);
                record(accepted);
                return Message::Busy {
                    accepted,
                    queue_depth: queue_depth as u32,
                };
            }
            Err(e) => {
                shared
                    .metrics
                    .samples_accepted
                    .fetch_add(u64::from(accepted), Ordering::Relaxed);
                record(accepted);
                return Message::Nack {
                    code: fleet_nack_code(&e),
                    detail: e.to_string(),
                };
            }
        }
    }
    shared
        .metrics
        .samples_accepted
        .fetch_add(u64::from(accepted), Ordering::Relaxed);
    record(accepted);
    shared.pump_events();
    Message::SampleAck {
        accepted,
        events: shared.take_events(session),
    }
}

/// Maps fleet-side failures onto protocol NACK codes.
fn fleet_nack_code(e: &FleetError) -> NackCode {
    match e {
        FleetError::UnknownSession(_) => NackCode::UnknownSession,
        FleetError::SessionQuarantined(_) => NackCode::Quarantined,
        _ => NackCode::Internal,
    }
}
