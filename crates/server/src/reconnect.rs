//! The device-side reconnect state machine: wraps [`Client`] with
//! automatic recovery so a sample stream survives resets, blackholes,
//! server restarts, and admission pushback — delivering every row
//! **exactly once** from the fleet's point of view.
//!
//! The invariant that makes this safe is the server's live resume
//! offset: every HELLO is acknowledged with the session's authoritative
//! `samples_processed`. After any connection loss the client re-HELLOs
//! and restarts the stream from that offset, which handles both failure
//! shapes of an in-flight batch:
//!
//! * **sent-but-unapplied** — the cut landed before the server fed the
//!   rows; the offset has not moved, so the rows are resent (replayed);
//! * **acked-but-unseen** — the server applied the rows but the ACK died
//!   on the wire; the offset *has* moved, so the client skips forward
//!   and the rows are never double-applied.
//!
//! Reconnect attempts back off with **decorrelated jitter**
//! (`delay = min(cap, uniform(base, prev * 3))`), seeded so a fleet of
//! clients never stampedes the listener in lockstep after a shared
//! outage, and capped by [`ReconnectPolicy::max_attempts`] consecutive
//! failures before [`ClientError::ReconnectExhausted`].

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use seqdrift_linalg::{Real, Rng};

use crate::client::{BatchReply, Client, ClientError};
use crate::proto::NackCode;

/// Knobs for the reconnect loop. The seed makes every backoff sequence
/// deterministic for a given `(seed)` — two clients with different
/// seeds jitter apart, one client replays identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconnectPolicy {
    /// Consecutive failed connection attempts tolerated before giving
    /// up with [`ClientError::ReconnectExhausted`]. A successful
    /// exchange resets the count.
    pub max_attempts: u32,
    /// Backoff floor: the first retry waits at least this long.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed for the decorrelated jitter draws.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

/// Decorrelated-jitter backoff sequence: each delay is drawn uniformly
/// from `[base, prev * 3]` and clamped to `cap`, so consecutive delays
/// decorrelate instead of marching through the same exponential rungs
/// as every other client.
#[derive(Debug)]
pub struct Backoff {
    rng: Rng,
    base: Duration,
    cap: Duration,
    prev: Duration,
}

impl Backoff {
    /// A fresh sequence under `policy`.
    pub fn new(policy: &ReconnectPolicy) -> Backoff {
        Backoff {
            rng: Rng::seed_from(policy.seed),
            base: policy.base.max(Duration::from_micros(1)),
            cap: policy.cap.max(policy.base),
            prev: policy.base,
        }
    }

    /// The next delay in the sequence.
    pub fn next_delay(&mut self) -> Duration {
        let lo = self.base.as_micros() as u64;
        let hi = (self.prev.as_micros() as u64).saturating_mul(3).max(lo + 1);
        let span = hi - lo;
        let drawn = lo + self.rng.below(span + 1);
        let delay = Duration::from_micros(drawn).min(self.cap);
        self.prev = delay;
        delay
    }

    /// Back to the floor (call after a healthy exchange).
    pub fn reset(&mut self) {
        self.prev = self.base;
    }
}

/// What happened while streaming one sample block through
/// [`ResilientClient::run_stream`].
#[derive(Debug, Default, Clone)]
pub struct StreamReport {
    /// Per-exchange round-trip latencies (successful ACKs only), µs.
    pub latencies_us: Vec<u64>,
    /// Drift/fault events the server pushed back.
    pub events: Vec<String>,
    /// Connections re-established mid-stream.
    pub reconnects: u64,
    /// Rows retransmitted after a connection loss (sent-but-unapplied).
    pub replayed_rows: u64,
    /// Rows the resume offset proved already applied, skipped without
    /// retransmission (acked-but-unseen).
    pub recovered_rows: u64,
    /// BUSY backpressure replies absorbed.
    pub busy_retries: u64,
}

/// A [`Client`] wrapped in the reconnect state machine. All streaming
/// goes through [`ResilientClient::run_stream`], which owns the resume
/// bookkeeping; direct protocol access is deliberately not exposed so
/// the exactly-once invariant cannot be bypassed by accident.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    session: u64,
    dim: u32,
    policy: ReconnectPolicy,
    backoff: Backoff,
    inner: Option<Client>,
    /// Rows of this session's stream the server has acknowledged
    /// (authoritative after every HELLO).
    acked_rows: u64,
    /// Highest row offset ever handed to a `send_batch` call.
    attempted_rows: u64,
    /// True once the first successful HELLO has completed (so later
    /// successes count as reconnects).
    connected_once: bool,
    /// Read timeout applied to every (re)connection. Shrink it in chaos
    /// runs so blackholes surface quickly.
    pub read_timeout: Option<Duration>,
    /// Keepalive interval applied to every (re)connection.
    pub keepalive_interval: Option<Duration>,
    /// Zero-progress BUSY budget, mirroring [`Client::busy_stall_timeout`].
    pub busy_stall_timeout: Duration,
    /// Total reconnects over the client's lifetime.
    pub total_reconnects: u64,
}

impl ResilientClient {
    /// Creates the wrapper without touching the network; the first
    /// [`ResilientClient::run_stream`] (or [`ResilientClient::hello`])
    /// connects. `addr` must resolve now so later reconnects cannot fail
    /// on name resolution.
    pub fn new(
        addr: impl ToSocketAddrs,
        session: u64,
        dim: u32,
        policy: ReconnectPolicy,
    ) -> Result<ResilientClient, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Io(std::io::Error::other("address resolved to nothing")))?;
        let backoff = Backoff::new(&policy);
        Ok(ResilientClient {
            addr,
            session,
            dim,
            policy,
            backoff,
            inner: None,
            acked_rows: 0,
            attempted_rows: 0,
            connected_once: false,
            read_timeout: Some(Duration::from_secs(30)),
            keepalive_interval: None,
            busy_stall_timeout: Duration::from_secs(30),
            total_reconnects: 0,
        })
    }

    /// The session this client speaks for.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Rows the server has acknowledged for this session.
    pub fn acked_rows(&self) -> u64 {
        self.acked_rows
    }

    /// Forces the handshake now (connecting if needed) and returns the
    /// server's live resume offset.
    pub fn hello(&mut self) -> Result<u64, ClientError> {
        self.ensure_connected(&mut StreamReport::default())?;
        Ok(self.acked_rows)
    }

    /// Streams `rows` (concatenated `dim`-wide rows) to completion in
    /// batches of `batch_rows`, surviving any number of connection
    /// losses within the policy's budget. The stream is addressed
    /// absolutely: row `i` of `rows` is row `i` of the session, so a
    /// resume offset from *any* HELLO maps directly onto it and rows
    /// already applied in earlier calls or connections are skipped, not
    /// re-fed.
    pub fn run_stream(
        &mut self,
        rows: &[Real],
        batch_rows: usize,
    ) -> Result<StreamReport, ClientError> {
        let dim = (self.dim as usize).max(1);
        let total_rows = (rows.len() / dim) as u64;
        let batch_rows = batch_rows.max(1);
        let mut report = StreamReport::default();
        let mut last_progress = Instant::now();
        while self.acked_rows < total_rows {
            self.ensure_connected(&mut report)?;
            let start_row = self.acked_rows;
            let start = start_row as usize * dim;
            let end = (start + batch_rows * dim).min(rows.len());
            let batch_end_row = (end / dim) as u64;
            let replay = self.attempted_rows.saturating_sub(start_row);
            let sent_at = Instant::now();
            let outcome = match self.inner.as_mut() {
                Some(client) => client.send_batch(&rows[start..end]),
                None => continue,
            };
            self.attempted_rows = self.attempted_rows.max(batch_end_row);
            match outcome {
                Ok(BatchReply::Ack {
                    accepted, events, ..
                }) => {
                    report
                        .latencies_us
                        .push(sent_at.elapsed().as_micros() as u64);
                    report.events.extend(events);
                    // Rows below the old attempt high-water were on the
                    // wire before; acking them again is a replay.
                    report.replayed_rows += replay.min(accepted as u64);
                    self.acked_rows += accepted as u64;
                    self.backoff.reset();
                    last_progress = Instant::now();
                }
                Ok(BatchReply::Busy { accepted, .. }) => {
                    report.busy_retries += 1;
                    report.replayed_rows += replay.min(accepted as u64);
                    self.acked_rows += accepted as u64;
                    if accepted > 0 {
                        last_progress = Instant::now();
                    } else if last_progress.elapsed() >= self.busy_stall_timeout {
                        return Err(ClientError::Stalled {
                            rows_sent: self.acked_rows as usize,
                            queue_depth: 0,
                        });
                    }
                    std::thread::sleep(self.backoff.next_delay());
                }
                Err(e) => {
                    if !self.recoverable(&e) {
                        return Err(e);
                    }
                    // Connection is gone (or the server shed us):
                    // reconnect and let the resume offset say where the
                    // stream really stands.
                    self.inner = None;
                    std::thread::sleep(self.backoff.next_delay());
                }
            }
        }
        Ok(report)
    }

    /// Fetches the session's checkpoint blob, reconnecting if the
    /// connection died since the last exchange.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, ClientError> {
        let mut report = StreamReport::default();
        let mut attempts: u32 = 0;
        loop {
            self.ensure_connected(&mut report)?;
            let outcome = match self.inner.as_mut() {
                Some(client) => client.snapshot(),
                None => continue,
            };
            match outcome {
                Ok(blob) => return Ok(blob),
                Err(e) if self.recoverable(&e) && attempts < self.policy.max_attempts => {
                    attempts += 1;
                    self.inner = None;
                    std::thread::sleep(self.backoff.next_delay());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Orderly goodbye; consumes the client. A dead connection is fine —
    /// the point of BYE is courtesy, not correctness.
    pub fn bye(mut self) -> Result<(), ClientError> {
        match self.inner.take() {
            Some(client) => client.bye(),
            None => Ok(()),
        }
    }

    /// Whether an error is worth a reconnect: transport failures,
    /// garbled replies (the proxy may cut a frame in half), transient
    /// admission pushback. Semantic rejections (bad dimension, quarantine,
    /// protocol violations the *server* attributes to us) are not.
    fn recoverable(&self, e: &ClientError) -> bool {
        match e {
            ClientError::Io(_) | ClientError::Proto(_) | ClientError::Unexpected(_) => true,
            ClientError::Nack { code, .. } => {
                matches!(code, NackCode::Busy | NackCode::AdmissionLimit)
            }
            _ => false,
        }
    }

    /// Connects + re-HELLOs until healthy or the attempt budget is
    /// spent. On success, adopts the server's resume offset as the
    /// authoritative acked-row count.
    fn ensure_connected(&mut self, report: &mut StreamReport) -> Result<(), ClientError> {
        if self.inner.is_some() {
            return Ok(());
        }
        let mut attempts: u32 = 0;
        loop {
            match Client::connect(self.addr, self.session, self.dim) {
                Ok((mut client, hello)) => {
                    client.set_read_timeout(self.read_timeout)?;
                    client.set_keepalive_interval(self.keepalive_interval);
                    client.busy_stall_timeout = self.busy_stall_timeout;
                    if self.connected_once {
                        report.reconnects += 1;
                        self.total_reconnects += 1;
                    }
                    self.connected_once = true;
                    // The server's offset is the truth. Ahead of our
                    // belief means ACKs died on the wire after the rows
                    // were applied — skip forward, never double-apply.
                    if hello.resume_from > self.acked_rows {
                        report.recovered_rows += hello.resume_from - self.acked_rows;
                    }
                    self.acked_rows = hello.resume_from;
                    self.inner = Some(client);
                    return Ok(());
                }
                Err(e) => {
                    attempts += 1;
                    if attempts >= self.policy.max_attempts {
                        return Err(ClientError::ReconnectExhausted {
                            attempts,
                            last: Box::new(e),
                        });
                    }
                    if !self.recoverable(&e) {
                        return Err(e);
                    }
                    std::thread::sleep(self.backoff.next_delay());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed_and_bounded() {
        let policy = ReconnectPolicy {
            seed: 99,
            ..ReconnectPolicy::default()
        };
        let seq = |p: &ReconnectPolicy| {
            let mut b = Backoff::new(p);
            (0..32).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        let a = seq(&policy);
        let b = seq(&policy);
        assert_eq!(a, b, "same seed must replay the same delays");
        for d in &a {
            assert!(*d >= policy.base && *d <= policy.cap, "{d:?} out of bounds");
        }
        let other = seq(&ReconnectPolicy {
            seed: 100,
            ..policy
        });
        assert_ne!(a, other, "different seeds must jitter apart");
    }

    #[test]
    fn backoff_reset_returns_to_the_floor() {
        let policy = ReconnectPolicy::default();
        let mut b = Backoff::new(&policy);
        for _ in 0..16 {
            let _ = b.next_delay();
        }
        b.reset();
        // After reset the next draw is from [base, base*3].
        let d = b.next_delay();
        assert!(d <= policy.base * 3, "{d:?} should be near the floor");
    }

    #[test]
    fn exhaustion_surfaces_the_terminal_error() {
        // Nothing listens on a reserved port of the discard block.
        let policy = ReconnectPolicy {
            max_attempts: 3,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(1),
            seed: 7,
        };
        let mut rc =
            ResilientClient::new("127.0.0.1:9", 1, 4, policy).expect("loopback addr resolves");
        match rc.run_stream(&[0.0; 8], 2) {
            Err(ClientError::ReconnectExhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
