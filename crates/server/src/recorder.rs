//! Live-ingest scenario recording: taps every *accepted* sample row (and
//! the connection events around them) into a
//! [`seqdrift_scenario::Recording`], which the drain path writes out as a
//! replayable `.sqsc` + data bundle.
//!
//! Only rows the fleet actually applied are recorded — a batch that hit
//! backpressure records its accepted prefix, a NACKed batch records the
//! rows applied before the error — so replaying the bundle through
//! `seqdrift fleet --scenario` reproduces the exact per-session streams
//! the live fleet consumed, bit for bit.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use seqdrift_linalg::Real;
use seqdrift_scenario::Recording;

/// Thread-safe recording tap shared by every connection handler.
pub struct ScenarioRecorder {
    dir: PathBuf,
    started: Instant,
    inner: Mutex<Recording>,
}

impl ScenarioRecorder {
    /// Starts a recorder that will write its bundle into `dir`. The
    /// scenario is named after the directory's final component.
    pub fn new(dir: &Path) -> ScenarioRecorder {
        let name = dir
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "recorded".to_string());
        ScenarioRecorder {
            dir: dir.to_path_buf(),
            started: Instant::now(),
            inner: Mutex::new(Recording::new(name)),
        }
    }

    /// The bundle output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn t_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Recording> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attaches the reference model blob sessions are created from.
    pub fn set_reference(&self, blob: &[u8]) {
        self.lock().set_reference(blob.to_vec());
    }

    /// A HELLO completed for `session` with the declared dimension.
    pub fn on_hello(&self, session: u64, dim: u32) {
        let t = self.t_us();
        let mut rec = self.lock();
        rec.set_dim(dim as usize);
        rec.push_event(t, session, "hello", 0);
    }

    /// `accepted` rows of a batch were applied by the fleet; `data` is the
    /// full flattened batch, of which only the accepted prefix is kept.
    pub fn on_rows(&self, session: u64, dim: usize, data: &[Real], accepted: usize) {
        if accepted == 0 || dim == 0 {
            return;
        }
        let keep = (accepted * dim).min(data.len());
        let t = self.t_us();
        let mut rec = self.lock();
        rec.set_dim(dim);
        rec.push_rows(session, &data[..keep]);
        rec.push_event(t, session, "samples", accepted);
    }

    /// The client said goodbye on `session`'s connection.
    pub fn on_bye(&self, session: u64) {
        let t = self.t_us();
        self.lock().push_event(t, session, "bye", 0);
    }

    /// `session`'s connection ended without a BYE (eviction, fault, drain).
    pub fn on_disconnect(&self, session: u64) {
        let t = self.t_us();
        self.lock().push_event(t, session, "disconnect", 0);
    }

    /// Writes the bundle; returns the `.sqsc` manifest path. Fails when
    /// nothing was recorded.
    pub fn finish(&self) -> Result<PathBuf, String> {
        self.lock()
            .write_bundle(&self.dir)
            .map_err(|e| e.to_string())
    }
}
