#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

//! # seqdrift-server
//!
//! The network ingest layer: a zero-external-dependency TCP server that
//! multiplexes many device connections into one
//! [`seqdrift_fleet::FleetEngine`], plus the matching protocol client.
//!
//! The paper's detector runs per device, but a deployed fleet needs a
//! channel between the devices and the aggregating host. This crate
//! provides that channel over plain `std::net`:
//!
//! * [`proto`] — the versioned, length-prefixed, CRC-sealed `SQNP` frame
//!   format (HELLO handshake, SAMPLE batches, event push-backs,
//!   PING/DRAIN/SNAPSHOT, typed NACKs). Every decode path bounds its
//!   allocations against the bytes actually present, mirroring the
//!   checkpoint hardening.
//! * [`Server`] — accept loop + one reader thread per connection, feeding
//!   `feed_blocking` so fleet backpressure surfaces to clients as `Busy`
//!   replies naming the stalled queue's depth. Idle connections are
//!   evicted; a graceful drain flushes every session's final state to the
//!   durable store.
//! * [`Client`] — the device side: connect, handshake, stream batches
//!   (absorbing `Busy` with backoff), drain events, snapshot state.
//!
//! The protocol is strictly request/response per connection, so one
//! hostile or stalled connection can never corrupt another's stream —
//! the blast radius of any single client is exactly itself.
//!
//! Live ingest can be captured for replay: [`recorder`] taps every
//! accepted sample row (plus hello/bye/disconnect events and timing) into
//! a `seqdrift-scenario` recording, and the drain path writes it out as a
//! replayable `.sqsc` bundle — any incident becomes a regression test.
//!
//! Robustness is proven, not assumed: [`chaos`] ships a deterministic
//! in-process fault-injection proxy (resets, short writes, slow-loris
//! stalls, jitter, blackholes — all replayable from one seed), and
//! [`reconnect`] the client-side recovery state machine (decorrelated-
//! jitter backoff, re-HELLO with live resume offsets, idempotent tail
//! replay) that the chaos suites drive to exactly-once delivery.

pub mod chaos;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod reconnect;
pub mod recorder;
mod server;

pub use chaos::{ChaosConfig, ChaosEvent, ChaosProxy, ConnPlan, Direction, FaultKind};
pub use client::{BatchReply, Client, ClientError, HelloReply};
pub use metrics::{ServerMetrics, ServerMetricsSnapshot};
pub use proto::{FrameType, Message, NackCode, ProtoError};
pub use reconnect::{ReconnectPolicy, ResilientClient, StreamReport};
pub use recorder::ScenarioRecorder;
pub use server::{AdmissionConfig, Server, ServerConfig, ServerError, ServerReport};
