//! The device-side protocol client: one TCP connection speaking `SQNP`
//! for one session. Used by `seqdrift load`, the loopback tests, and any
//! embedded caller that wants to stream samples to a fleet host.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use seqdrift_linalg::Real;

use crate::proto::{read_frame, Message, NackCode, ProtoError};

/// Errors raised on the client side of a connection.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes the server closing mid-exchange).
    Io(std::io::Error),
    /// The reply did not decode as a valid frame.
    Proto(ProtoError),
    /// The server rejected the request with a typed NACK.
    Nack {
        /// Why.
        code: NackCode,
        /// Server-provided detail.
        detail: String,
    },
    /// The server replied with a frame type the request cannot produce.
    Unexpected(&'static str),
    /// The batch would not fit in one `Sample` frame ([`Client::send_batch`]
    /// never sends it — the server would reject the frame as hostile and
    /// drop the connection). [`Client::send_all`] splits automatically and
    /// never raises this.
    Oversized {
        /// Rows in the rejected batch.
        rows: usize,
        /// Most rows one frame can carry at this client's dimension.
        max_rows: usize,
    },
    /// [`Client::send_all`] saw only zero-progress BUSY replies for the
    /// whole stall deadline: the target shard is not draining. Rows
    /// already applied are reported so the caller can resume later.
    Stalled {
        /// Rows of the batch the server applied before the stall.
        rows_sent: usize,
        /// Depth of the stalled shard queue in the last BUSY reply.
        queue_depth: u32,
    },
    /// [`crate::ResilientClient`] exhausted its reconnect budget without
    /// reaching a healthy connection. Carries the terminal failure.
    ReconnectExhausted {
        /// Consecutive failed connection attempts.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<ClientError>,
    },
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Nack { code, detail } => write!(f, "server rejected: {code} ({detail})"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
            ClientError::Oversized { rows, max_rows } => write!(
                f,
                "batch of {rows} rows exceeds the {max_rows}-row frame limit \
                 (use send_all to split)"
            ),
            ClientError::Stalled {
                rows_sent,
                queue_depth,
            } => write!(
                f,
                "server stayed BUSY past the stall deadline with no progress \
                 ({rows_sent} row(s) applied, stalled queue depth {queue_depth})"
            ),
            ClientError::ReconnectExhausted { attempts, last } => write!(
                f,
                "gave up after {attempts} consecutive failed reconnect attempt(s): {last}"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Proto(other),
        }
    }
}

/// What the server said in the HELLO acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloReply {
    /// The session already existed (resumed from the durable store or
    /// created by an earlier connection).
    pub existing: bool,
    /// The session's live `samples_processed` at the handshake (0 for a
    /// fresh session); replay the stream from this offset after any
    /// reconnect — everything before it is already applied server-side.
    pub resume_from: u64,
}

/// Outcome of one `Sample` frame exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchReply {
    /// The whole batch was applied.
    Ack {
        /// Rows applied.
        accepted: u32,
        /// Drift/fault events pushed back for this session.
        events: Vec<String>,
        /// More events are queued server-side (`drain` to fetch).
        events_pending: bool,
    },
    /// Backpressure: only a prefix was applied; retry the rest.
    Busy {
        /// Rows applied before the stall.
        accepted: u32,
        /// Depth of the stalled shard queue.
        queue_depth: u32,
    },
}

/// A connected, HELLOed protocol client for one session.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    session: u64,
    dim: u32,
    /// Cumulative BUSY replies absorbed by [`Client::send_all`].
    pub busy_retries: u64,
    /// How long [`Client::send_all`] keeps retrying BUSY replies that
    /// make *zero* progress before giving up with
    /// [`ClientError::Stalled`]. Any progress resets the clock, so a
    /// slow-but-draining server is never abandoned. Default 30 s.
    pub busy_stall_timeout: Duration,
    /// PING when this long has passed since the last exchange (see
    /// [`Client::keepalive_tick`]). `None` (the default) disables
    /// keepalives.
    keepalive_interval: Option<Duration>,
    /// When the last request/response turn completed.
    last_exchange: std::time::Instant,
}

impl Client {
    /// Connects and performs the HELLO handshake for `session` with the
    /// given feature dimension.
    pub fn connect(
        addr: impl ToSocketAddrs,
        session: u64,
        dim: u32,
    ) -> Result<(Client, HelloReply), ClientError> {
        let stream = TcpStream::connect(addr)?;
        // A generous timeout so a hung server surfaces as an error
        // instead of a deadlock; normal replies arrive in microseconds.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            session,
            dim,
            busy_retries: 0,
            busy_stall_timeout: Duration::from_secs(30),
            keepalive_interval: None,
            last_exchange: std::time::Instant::now(),
        };
        let reply = client.exchange(&Message::Hello {
            dim,
            scalar_width: core::mem::size_of::<Real>() as u8,
        })?;
        match reply.0 {
            Message::HelloAck {
                existing,
                resume_from,
            } => Ok((
                client,
                HelloReply {
                    existing,
                    resume_from,
                },
            )),
            other => Err(unexpected(other)),
        }
    }

    /// The session this client speaks for.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Caps how long a read blocks waiting for a reply (default 30 s).
    /// Chaos/reconnect callers shrink this so a blackholed link surfaces
    /// as a timed-out [`ClientError::Io`] instead of a long hang.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Arms the application-level keepalive: [`Client::keepalive_tick`]
    /// PINGs whenever `interval` has passed since the last exchange.
    /// Devices with bursty send gaps set this to half the server's idle
    /// eviction timeout so a quiet-but-healthy connection is never
    /// evicted as dead.
    pub fn set_keepalive_interval(&mut self, interval: Option<Duration>) {
        self.keepalive_interval = interval;
    }

    /// PINGs if the keepalive interval has elapsed since the last
    /// exchange; a no-op otherwise (and always a no-op when no interval
    /// is armed). Call this from the device's idle loop during send
    /// gaps. Returns `true` when a PING was actually sent.
    pub fn keepalive_tick(&mut self) -> Result<bool, ClientError> {
        match self.keepalive_interval {
            Some(interval) if self.last_exchange.elapsed() >= interval => {
                self.ping()?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Most rows one `Sample` frame can carry at this client's dimension.
    /// Larger batches must go through [`Client::send_all`], which splits.
    pub fn max_rows_per_frame(&self) -> usize {
        crate::proto::max_sample_rows(self.dim)
    }

    /// Sends one batch (rows concatenated, `rows.len() % dim == 0`) and
    /// returns the server's verdict without retrying on BUSY. A batch too
    /// large for one frame is rejected client-side with
    /// [`ClientError::Oversized`] before any bytes hit the wire — the
    /// server would NACK the oversized length prefix as hostile and drop
    /// the connection.
    pub fn send_batch(&mut self, rows: &[Real]) -> Result<BatchReply, ClientError> {
        let max_rows = self.max_rows_per_frame();
        let batch_rows = rows.len() / (self.dim.max(1) as usize);
        if batch_rows > max_rows {
            return Err(ClientError::Oversized {
                rows: batch_rows,
                max_rows,
            });
        }
        let (reply, flags) = self.exchange(&Message::Sample {
            dim: self.dim,
            data: rows.to_vec(),
        })?;
        match reply {
            Message::SampleAck { accepted, events } => Ok(BatchReply::Ack {
                accepted,
                events,
                events_pending: flags & crate::proto::FLAG_EVENTS_PENDING != 0,
            }),
            Message::Busy {
                accepted,
                queue_depth,
            } => Ok(BatchReply::Busy {
                accepted,
                queue_depth,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Sends a batch of any size to completion: splits it into
    /// frame-sized chunks (see [`Client::max_rows_per_frame`]) and
    /// absorbs BUSY replies with a short doubling backoff, resending the
    /// unapplied suffix. Gives up with [`ClientError::Stalled`] — carrying
    /// the rows already applied — once BUSY replies make zero progress
    /// for [`Client::busy_stall_timeout`]. Returns every event pushed
    /// back along the way.
    pub fn send_all(&mut self, rows: &[Real]) -> Result<Vec<String>, ClientError> {
        let dim = self.dim as usize;
        let frame_scalars = self.max_rows_per_frame().max(1) * dim.max(1);
        let mut offset = 0usize;
        let mut events = Vec::new();
        let mut backoff_us: u64 = 50;
        let mut last_progress = std::time::Instant::now();
        while offset < rows.len() {
            let chunk_end = (offset + frame_scalars).min(rows.len());
            match self.send_batch(&rows[offset..chunk_end])? {
                BatchReply::Ack {
                    accepted,
                    events: mut e,
                    ..
                } => {
                    offset += accepted as usize * dim;
                    events.append(&mut e);
                    last_progress = std::time::Instant::now();
                }
                BatchReply::Busy {
                    accepted,
                    queue_depth,
                } => {
                    self.busy_retries += 1;
                    offset += accepted as usize * dim;
                    if accepted > 0 {
                        last_progress = std::time::Instant::now();
                    } else if last_progress.elapsed() >= self.busy_stall_timeout {
                        return Err(ClientError::Stalled {
                            rows_sent: offset / dim.max(1),
                            queue_depth,
                        });
                    }
                    std::thread::sleep(Duration::from_micros(backoff_us));
                    backoff_us = (backoff_us * 2).min(2_000);
                }
            }
        }
        Ok(events)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.exchange(&Message::Ping)?.0 {
            Message::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the session's queued drift/fault events.
    pub fn drain(&mut self) -> Result<Vec<String>, ClientError> {
        match self.exchange(&Message::Drain)?.0 {
            Message::DrainAck { events } => Ok(events),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the session's checkpoint blob (quiescent-point state; all
    /// samples acknowledged before this call are reflected).
    pub fn snapshot(&mut self) -> Result<Vec<u8>, ClientError> {
        match self.exchange(&Message::Snapshot)?.0 {
            Message::SnapshotAck { blob } => Ok(blob),
            other => Err(unexpected(other)),
        }
    }

    /// Orderly goodbye; consumes the client.
    pub fn bye(mut self) -> Result<(), ClientError> {
        self.write(&Message::Bye.encode(self.session))
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        use std::io::Write;
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// One request/response turn. NACK replies become [`ClientError::Nack`].
    fn exchange(&mut self, msg: &Message) -> Result<(Message, u8), ClientError> {
        self.write(&msg.encode(self.session))?;
        let frame = read_frame(&mut self.stream)?;
        let flags = frame.flags;
        self.last_exchange = std::time::Instant::now();
        match Message::decode(&frame)? {
            Message::Nack { code, detail } => Err(ClientError::Nack { code, detail }),
            reply => Ok((reply, flags)),
        }
    }
}

fn unexpected(msg: Message) -> ClientError {
    ClientError::Unexpected(match msg {
        Message::Hello { .. } => "Hello",
        Message::Sample { .. } => "Sample",
        Message::Ping => "Ping",
        Message::Drain => "Drain",
        Message::Snapshot => "Snapshot",
        Message::Bye => "Bye",
        Message::HelloAck { .. } => "HelloAck",
        Message::SampleAck { .. } => "SampleAck",
        Message::Pong => "Pong",
        Message::DrainAck { .. } => "DrainAck",
        Message::SnapshotAck { .. } => "SnapshotAck",
        Message::Busy { .. } => "Busy",
        Message::Nack { .. } => "Nack",
    })
}
