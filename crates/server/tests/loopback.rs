//! Client/server loopback end-to-end: streams ingested over TCP must
//! leave the fleet in *bit-identical* state to the same streams fed
//! in-process, backpressure must surface as BUSY and resolve, idle
//! connections must be evicted, and a graceful drain must flush every
//! session's final state to the durable store.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_fleet::{Fault, FaultInjector, FleetConfig, FleetEngine, SessionId};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use seqdrift_server::{Client, ClientError, NackCode, Server, ServerConfig, ServerReport};

const DIM: usize = 4;

fn checkpoint_with_dim(seed: u64, dim: usize) -> Vec<u8> {
    let mut rng = Rng::seed_from(seed);
    let train: Vec<Vec<Real>> = (0..100)
        .map(|_| {
            let mut x = vec![0.0; dim];
            rng.fill_normal(&mut x, 0.3, 0.05);
            x
        })
        .collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(dim, 3).with_seed(seed)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(1, dim).with_window(16), &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

fn checkpoint(seed: u64) -> Vec<u8> {
    checkpoint_with_dim(seed, DIM)
}

/// Deterministic per-session stream, flattened row-major.
fn stream(session: u64, rows: usize, mean: Real) -> Vec<Real> {
    let mut rng = Rng::seed_from(5000 + session);
    let mut out = Vec::with_capacity(rows * DIM);
    for _ in 0..rows {
        let mut x = vec![0.0; DIM];
        rng.fill_normal(&mut x, mean, 0.05);
        out.extend_from_slice(&x);
    }
    out
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqdrift-server-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts a server on an ephemeral port; returns its address, the stop
/// flag, and the join handle yielding the final report.
fn spawn_server(
    cfg: ServerConfig,
) -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<ServerReport>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || server.run(move || flag.load(Ordering::Relaxed)));
    (addr, stop, handle)
}

/// The tentpole acceptance test: the same streams produce bit-identical
/// per-session checkpoints whether they travel over TCP or are fed
/// directly into an in-process engine — including with one hostile
/// connection poisoning the server mid-run (blast radius one).
#[test]
fn networked_run_is_bit_identical_to_in_process_run() {
    const SESSIONS: u64 = 4;
    const ROWS: usize = 120;
    let blob = checkpoint(11);

    let cfg = ServerConfig::new(FleetConfig::new(2)).with_reference(blob.clone());
    let (addr, stop, handle) = spawn_server(cfg);

    // One garbage connection mid-run: must be NACKed away without
    // touching any session's stream.
    let poison = std::thread::spawn(move || {
        use std::io::Write;
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n");
        // Server answers with a fatal NACK and drops the connection.
        let mut buf = Vec::new();
        use std::io::Read;
        let _ = s.read_to_end(&mut buf);
    });

    // Networked run: one client per session, batched sends.
    let mut net_snapshots = Vec::new();
    let mut clients: Vec<Client> = (0..SESSIONS)
        .map(|dev| {
            let (c, hello) = Client::connect(addr, dev, DIM as u32).unwrap();
            assert!(!hello.existing);
            assert_eq!(hello.resume_from, 0);
            c
        })
        .collect();
    for c in clients.iter_mut() {
        let rows = stream(c.session(), ROWS, 0.3);
        // Uneven batch sizes exercise re-framing.
        for batch in rows.chunks(7 * DIM) {
            c.send_all(batch).unwrap();
        }
    }
    for mut c in clients {
        let dev = c.session();
        net_snapshots.push((dev, c.snapshot().unwrap()));
        c.bye().unwrap();
    }
    poison.join().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(report.fleet.sessions.len(), SESSIONS as usize);
    assert_eq!(
        report.net.samples_accepted,
        SESSIONS * ROWS as u64,
        "every row must have been applied exactly once"
    );
    assert!(
        report.net.nacks_sent >= 1,
        "the poisoned connection must have been NACKed"
    );

    // In-process reference run over the identical streams.
    let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
    for dev in 0..SESSIONS {
        fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
    }
    for dev in 0..SESSIONS {
        let rows = stream(dev, ROWS, 0.3);
        for row in rows.chunks_exact(DIM) {
            fleet.feed_blocking(SessionId(dev), row).unwrap();
        }
    }
    for (dev, net_blob) in &net_snapshots {
        let local_blob = fleet.snapshot(SessionId(*dev)).unwrap();
        assert_eq!(
            &local_blob, net_blob,
            "session {dev}: networked state diverged from in-process state"
        );
    }
    fleet.shutdown();
}

/// A deliberately slow session builds real backpressure: the server's
/// feed deadline fires, BUSY replies surface the stalled queue depth, and
/// the client's retry loop still lands every sample exactly once.
#[test]
fn busy_backpressure_surfaces_and_retries_to_completion() {
    const ROWS: usize = 30;
    let blob = checkpoint(13);
    let injector = FaultInjector::new(vec![Fault::SlowSession {
        session: 0,
        every: 1,
        micros: 20_000,
    }]);
    let fleet_cfg = FleetConfig::new(1)
        .with_queue_capacity(1)
        .with_feed_timeout(Duration::from_millis(5))
        .with_fault_injector(injector);
    let cfg = ServerConfig::new(fleet_cfg).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);

    let (mut client, _) = Client::connect(addr, 0, DIM as u32).unwrap();
    let rows = stream(0, ROWS, 0.3);
    client.send_all(&rows).unwrap();
    let busy_retries = client.busy_retries;
    let snap = client.snapshot().unwrap();
    client.bye().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert!(
        busy_retries > 0,
        "a 20 ms/sample consumer behind a 1-deep queue and a 5 ms deadline must go BUSY"
    );
    assert_eq!(report.net.busy_replies, busy_retries);
    assert_eq!(report.net.samples_accepted, ROWS as u64);
    let pipeline = DriftPipeline::from_bytes(&snap).unwrap();
    assert_eq!(pipeline.samples_processed(), ROWS as u64);
}

/// Silent connections are evicted after the idle timeout; live ones on
/// the same server are untouched.
#[test]
fn idle_connection_is_evicted_without_collateral() {
    let blob = checkpoint(17);
    let cfg = ServerConfig::new(FleetConfig::new(1))
        .with_reference(blob)
        .with_idle_timeout(Duration::from_millis(150));
    let (addr, stop, handle) = spawn_server(cfg);

    let (mut idle, _) = Client::connect(addr, 1, DIM as u32).unwrap();
    let (mut live, _) = Client::connect(addr, 2, DIM as u32).unwrap();

    // Keep the live connection chatty across the idle window.
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(60));
        live.ping().unwrap();
    }
    // The idle connection is gone: its next request fails.
    assert!(idle.ping().is_err(), "idle connection should have been cut");
    live.send_all(&stream(2, 5, 0.3)).unwrap();
    live.bye().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert!(report.net.connections_evicted_idle >= 1);
    assert_eq!(report.net.samples_accepted, 5);
}

/// Graceful drain must flush every session's *final* state durably: a
/// fresh server over the same state dir resumes at exactly the sample
/// count reached over the network, with zero tail loss — even though the
/// rolling checkpoint cadence never covered the tail.
#[test]
fn graceful_drain_flushes_final_state_durably() {
    const ROWS: usize = 37; // far below the 1000-sample rolling cadence
    let dir = tmp_dir("drain-flush");
    let blob = checkpoint(19);

    let fleet_cfg = FleetConfig::new(1)
        .with_checkpoint_interval(1000)
        .with_state_dir(&dir);
    let cfg = ServerConfig::new(fleet_cfg).with_reference(blob.clone());
    let (addr, stop, handle) = spawn_server(cfg);
    let (mut client, hello) = Client::connect(addr, 9, DIM as u32).unwrap();
    assert!(!hello.existing);
    client.send_all(&stream(9, ROWS, 0.3)).unwrap();
    client.bye().unwrap();
    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(report.fleet.sessions.len(), 1);

    // Second server generation over the same state dir.
    let fleet_cfg = FleetConfig::new(1)
        .with_checkpoint_interval(1000)
        .with_state_dir(&dir);
    let cfg = ServerConfig::new(fleet_cfg).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);
    let (mut client, hello) = Client::connect(addr, 9, DIM as u32).unwrap();
    assert!(hello.existing, "session must have been resumed from disk");
    assert_eq!(
        hello.resume_from, ROWS as u64,
        "graceful drain must flush the tail: no samples may be lost"
    );
    let snap = client.snapshot().unwrap();
    assert_eq!(
        DriftPipeline::from_bytes(&snap)
            .unwrap()
            .samples_processed(),
        ROWS as u64
    );
    client.bye().unwrap();
    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A reconnect mid-life must be told the session's *live* sample count:
/// replaying the stream from the acked `resume_from` must never
/// double-apply samples, whether the session was created after bind or
/// fed since it was resumed.
#[test]
fn reconnect_reports_live_resume_offset() {
    let blob = checkpoint(29);
    let cfg = ServerConfig::new(FleetConfig::new(1)).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);

    let (mut first, hello) = Client::connect(addr, 3, DIM as u32).unwrap();
    assert!(!hello.existing);
    assert_eq!(hello.resume_from, 0);
    first.send_all(&stream(3, 40, 0.3)).unwrap();
    first.bye().unwrap();

    // Reconnect (e.g. after a network blip): the ack must carry the 40
    // samples already applied, not a frozen bind-time offset of 0.
    let (mut second, hello) = Client::connect(addr, 3, DIM as u32).unwrap();
    assert!(hello.existing);
    assert_eq!(
        hello.resume_from, 40,
        "resume offset must track the live session, not bind-time state"
    );
    second.send_all(&stream(3, 25, 0.3)).unwrap();
    second.bye().unwrap();

    // And it keeps tracking as the session advances.
    let (third, hello) = Client::connect(addr, 3, DIM as u32).unwrap();
    assert!(hello.existing);
    assert_eq!(hello.resume_from, 65);
    third.bye().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(report.net.samples_accepted, 65);
}

/// Batches larger than one frame never produce an un-sendable request:
/// `send_batch` rejects them client-side with a typed error before any
/// bytes hit the wire, and `send_all` transparently splits them into
/// frame-sized chunks that all land exactly once.
#[test]
fn oversized_batches_are_split_client_side() {
    // A wide model keeps max_rows_per_frame (and so the test) small.
    const WIDE: usize = 64;
    let blob = checkpoint_with_dim(31, WIDE);
    let cfg = ServerConfig::new(FleetConfig::new(1)).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);

    let (mut client, _) = Client::connect(addr, 1, WIDE as u32).unwrap();
    let max_rows = client.max_rows_per_frame();
    let rows = max_rows + 3; // one full frame plus a remainder
    let big: Vec<Real> = {
        let mut rng = Rng::seed_from(6001);
        let mut out = vec![0.0; rows * WIDE];
        rng.fill_normal(&mut out, 0.3, 0.05);
        out
    };
    match client.send_batch(&big) {
        Err(ClientError::Oversized {
            rows: got,
            max_rows: m,
        }) => {
            assert_eq!(got, rows);
            assert_eq!(m, max_rows);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
    // Nothing was written, so the connection is still healthy — and
    // send_all lands the whole batch by re-framing.
    client.send_all(&big).unwrap();
    let snap = client.snapshot().unwrap();
    client.bye().unwrap();
    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(report.net.samples_accepted, rows as u64);
    assert!(
        report.net.frames_rx > 2,
        "the oversized batch must have travelled as multiple frames"
    );
    assert_eq!(
        DriftPipeline::from_bytes(&snap)
            .unwrap()
            .samples_processed(),
        rows as u64
    );
}

/// A shard that stops draining must not spin `send_all` forever: once
/// BUSY replies make zero progress past the stall deadline, the client
/// gets a typed error carrying the rows already applied.
#[test]
fn send_all_surfaces_a_stalled_shard() {
    let blob = checkpoint(37);
    let injector = FaultInjector::new(vec![Fault::SlowSession {
        session: 0,
        every: 1,
        micros: 400_000,
    }]);
    let fleet_cfg = FleetConfig::new(1)
        .with_queue_capacity(1)
        .with_feed_timeout(Duration::from_millis(2))
        .with_fault_injector(injector);
    let cfg = ServerConfig::new(fleet_cfg).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);

    let (mut client, _) = Client::connect(addr, 0, DIM as u32).unwrap();
    client.busy_stall_timeout = Duration::from_millis(100);
    match client.send_all(&stream(0, 50, 0.3)) {
        Err(ClientError::Stalled { rows_sent, .. }) => {
            assert!(rows_sent < 50, "the stall must interrupt the batch");
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
    drop(client);
    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}

/// A device with bursty send gaps arms the application-level keepalive
/// at half the server's idle-eviction window: its quiet-but-healthy
/// connection survives a gap several windows long, while an identical
/// client without keepalives is evicted.
#[test]
fn keepalive_outlives_idle_eviction() {
    let blob = checkpoint(41);
    let cfg = ServerConfig::new(FleetConfig::new(1))
        .with_reference(blob)
        .with_idle_timeout(Duration::from_millis(150));
    let (addr, stop, handle) = spawn_server(cfg);

    let (mut kept, _) = Client::connect(addr, 1, DIM as u32).unwrap();
    kept.set_keepalive_interval(Some(Duration::from_millis(75)));
    let (mut dropped, _) = Client::connect(addr, 2, DIM as u32).unwrap();

    // A 500 ms send gap: > 3 idle windows. The armed client ticks its
    // keepalive from its idle loop; the other stays silent.
    let mut pings = 0u32;
    for _ in 0..10 {
        std::thread::sleep(Duration::from_millis(50));
        if kept.keepalive_tick().unwrap() {
            pings += 1;
        }
    }
    assert!(pings >= 2, "the gap spans several keepalive intervals");
    // The armed connection still works; the silent one was evicted.
    kept.send_all(&stream(1, 5, 0.3)).unwrap();
    kept.bye().unwrap();
    assert!(
        dropped.ping().is_err(),
        "the silent connection should have been evicted"
    );

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert!(report.net.connections_evicted_idle >= 1);
    assert_eq!(report.net.samples_accepted, 5);
}

/// `Stalled` carries the partial progress, and a fresh `send_all` from
/// that offset finishes the stream with zero duplicated and zero lost
/// rows once the shard drains again.
#[test]
fn stalled_send_resumes_from_reported_offset_exactly_once() {
    const ROWS: usize = 50;
    let blob = checkpoint(43);
    // Every 10th sample of session 0 takes 400 ms; the rest are fast. A
    // 100 ms zero-progress budget trips on the first long pause, and the
    // resumed send (with a patient budget) rides out the remaining ones.
    let injector = FaultInjector::new(vec![Fault::SlowSession {
        session: 0,
        every: 10,
        micros: 400_000,
    }]);
    let fleet_cfg = FleetConfig::new(1)
        .with_queue_capacity(1)
        .with_feed_timeout(Duration::from_millis(2))
        .with_fault_injector(injector);
    let cfg = ServerConfig::new(fleet_cfg).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);

    let (mut client, _) = Client::connect(addr, 0, DIM as u32).unwrap();
    client.busy_stall_timeout = Duration::from_millis(100);
    let rows = stream(0, ROWS, 0.3);
    let rows_sent = match client.send_all(&rows) {
        Err(ClientError::Stalled { rows_sent, .. }) => {
            assert!(
                rows_sent > 0 && rows_sent < ROWS,
                "the stall must interrupt mid-stream, got {rows_sent}"
            );
            rows_sent
        }
        other => panic!("expected Stalled, got {other:?}"),
    };
    // The connection survived the typed error: resume the tail from the
    // reported offset on the same client, now with a patient budget.
    client.busy_stall_timeout = Duration::from_secs(10);
    client.send_all(&rows[rows_sent * DIM..]).unwrap();
    let snap = client.snapshot().unwrap();
    client.bye().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(
        report.net.samples_accepted, ROWS as u64,
        "resume must neither duplicate nor lose rows"
    );
    assert_eq!(
        DriftPipeline::from_bytes(&snap)
            .unwrap()
            .samples_processed(),
        ROWS as u64
    );
}

/// Handshake rejections are typed: unknown session without a reference
/// model, wrong dimension, wrong scalar width, and samples before HELLO.
#[test]
fn handshake_rejections_are_typed() {
    let blob = checkpoint(23);

    // No reference model: unknown sessions cannot be auto-created.
    let (addr, stop, handle) = spawn_server(ServerConfig::new(FleetConfig::new(1)));
    match Client::connect(addr, 1, DIM as u32) {
        Err(ClientError::Nack { code, .. }) => assert_eq!(code, NackCode::UnknownSession),
        other => panic!("expected UnknownSession nack, got {other:?}"),
    }
    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();

    // With a reference model: a dim mismatch is named as such.
    let cfg = ServerConfig::new(FleetConfig::new(1)).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);
    match Client::connect(addr, 1, (DIM + 3) as u32) {
        Err(ClientError::Nack { code, .. }) => assert_eq!(code, NackCode::DimMismatch),
        other => panic!("expected DimMismatch nack, got {other:?}"),
    }
    // The connection itself survives a semantic NACK: a correct HELLO on
    // a fresh client still works against the same server.
    let (mut ok, _) = Client::connect(addr, 1, DIM as u32).unwrap();
    ok.ping().unwrap();
    ok.bye().unwrap();
    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}
