//! Chaos suite: the ingest endpoints must survive deterministic network
//! fault injection — mid-frame cuts, short writes, jitter, blackholes —
//! with **exactly-once** sample delivery (bit-identical final state, no
//! lost or double-applied rows), and the server's admission control must
//! shed abusive connection patterns without collateral damage.
//!
//! Every fault schedule derives from a fixed seed, so a failure here
//! replays: rerun with the same seed and the same faults hit the same
//! bytes.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_fleet::{Fault, FaultInjector, FleetConfig, FleetEngine, SessionId};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use seqdrift_server::{
    AdmissionConfig, ChaosConfig, ChaosProxy, Client, ClientError, ConnPlan, Direction, FaultKind,
    NackCode, ReconnectPolicy, ResilientClient, Server, ServerConfig, ServerReport,
};

const DIM: usize = 4;

fn checkpoint(seed: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from(seed);
    let train: Vec<Vec<Real>> = (0..100)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.3, 0.05);
            x
        })
        .collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 3).with_seed(seed)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(1, DIM).with_window(16), &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

/// Deterministic per-session stream, flattened row-major.
fn stream(session: u64, rows: usize) -> Vec<Real> {
    let mut rng = Rng::seed_from(7000 + session);
    let mut out = Vec::with_capacity(rows * DIM);
    for _ in 0..rows {
        let mut x = vec![0.0; DIM];
        rng.fill_normal(&mut x, 0.3, 0.05);
        out.extend_from_slice(&x);
    }
    out
}

#[allow(dead_code)]
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqdrift-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(
    cfg: ServerConfig,
) -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<ServerReport>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || server.run(move || flag.load(Ordering::Relaxed)));
    (addr, stop, handle)
}

/// Feeds the identical streams into an in-process engine and returns the
/// per-session snapshots — the ground truth every networked run under
/// chaos must match bit-for-bit.
fn reference_snapshots(blob: &[u8], sessions: u64, rows: usize) -> Vec<(u64, Vec<u8>)> {
    let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
    for dev in 0..sessions {
        fleet.create_from_bytes(SessionId(dev), blob).unwrap();
    }
    let mut out = Vec::new();
    for dev in 0..sessions {
        for row in stream(dev, rows).chunks_exact(DIM) {
            fleet.feed_blocking(SessionId(dev), row).unwrap();
        }
        out.push((dev, fleet.snapshot(SessionId(dev)).unwrap()));
    }
    fleet.shutdown();
    out
}

/// The executed fault schedule must be exactly the one derivable from the
/// seed alone: every injected reset lands at the byte offset
/// `ConnPlan::derive` predicts for that connection, with no traffic run
/// needed to know it in advance.
#[test]
fn injected_faults_match_the_plan_derived_from_the_seed() {
    // Protocol-blind upstream sink: reads and discards until EOF.
    let sink = TcpListener::bind("127.0.0.1:0").unwrap();
    let upstream = sink.local_addr().unwrap();
    let sink_thread = std::thread::spawn(move || {
        let mut drained = Vec::new();
        for _ in 0..3 {
            let (mut s, _) = match sink.accept() {
                Ok(pair) => pair,
                Err(_) => break,
            };
            drained.push(std::thread::spawn(move || {
                let mut buf = [0u8; 1024];
                while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
            }));
        }
        for h in drained {
            let _ = h.join();
        }
    });

    let cfg = ChaosConfig::quiet(0xC0FFEE).with_resets(1.0, (100, 300));
    let proxy = ChaosProxy::spawn(upstream, cfg.clone()).unwrap();
    for _ in 0..3 {
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        // Write until the scheduled cut severs the connection.
        let chunk = [0xABu8; 64];
        loop {
            if c.write_all(&chunk).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // Pumps log the reset as they execute it; wait for all three.
    let deadline = Instant::now() + Duration::from_secs(5);
    while proxy.events().len() < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let events = proxy.events();
    assert_eq!(events.len(), 3, "{events:?}");
    for ev in events {
        assert_eq!(ev.kind, FaultKind::Reset);
        assert_eq!(ev.dir, Direction::ClientToServer);
        let plan = ConnPlan::derive(&cfg, ev.conn, Direction::ClientToServer);
        assert_eq!(
            Some(ev.at_byte),
            plan.cut_after,
            "conn {}: executed cut must match the derived schedule",
            ev.conn
        );
    }
    proxy.shutdown();
    sink_thread.join().unwrap();
}

/// Mid-frame connection resets on every connection: the reconnect state
/// machine re-HELLOs, resumes from the server's live offset, and the
/// final state is bit-identical to a clean run — every row applied
/// exactly once despite the cuts landing inside frames.
#[test]
fn mid_frame_cuts_deliver_every_row_exactly_once() {
    const ROWS: usize = 80;
    let blob = checkpoint(41);
    let cfg = ServerConfig::new(FleetConfig::new(2)).with_reference(blob.clone());
    let (addr, stop, handle) = spawn_server(cfg);
    let proxy =
        ChaosProxy::spawn(addr, ChaosConfig::quiet(2024).with_resets(1.0, (150, 900))).unwrap();

    let policy = ReconnectPolicy {
        max_attempts: 16,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(50),
        seed: 0xBEEF,
    };
    let mut rc = ResilientClient::new(proxy.local_addr(), 0, DIM as u32, policy).unwrap();
    rc.read_timeout = Some(Duration::from_millis(500));
    let rows = stream(0, ROWS);
    let report = rc.run_stream(&rows, 8).unwrap();
    assert_eq!(rc.acked_rows(), ROWS as u64);
    assert!(
        report.reconnects >= 1,
        "every connection is cut within 900 bytes; the stream cannot finish on one"
    );
    let snap = rc.snapshot().unwrap();
    let _ = rc.bye();
    let resets = proxy
        .events()
        .iter()
        .filter(|e| e.kind == FaultKind::Reset)
        .count();
    assert!(resets >= 1, "at least one scheduled reset must have fired");
    proxy.shutdown();

    stop.store(true, Ordering::Relaxed);
    let server_report = handle.join().unwrap();
    assert_eq!(
        server_report.net.samples_accepted, ROWS as u64,
        "exactly-once: no row lost, none double-applied"
    );
    assert!(server_report.net.reconnects >= 1);

    let reference = reference_snapshots(&blob, 1, ROWS);
    assert_eq!(
        snap, reference[0].1,
        "state after chaos diverged from the clean in-process run"
    );
}

/// Short writes down to single bytes plus latency jitter: the receiver
/// sees every possible partial-read boundary and framing must never slip.
#[test]
fn short_writes_and_jitter_never_break_framing() {
    const ROWS: usize = 40;
    let blob = checkpoint(43);
    let cfg = ServerConfig::new(FleetConfig::new(1)).with_reference(blob.clone());
    let (addr, stop, handle) = spawn_server(cfg);
    let proxy = ChaosProxy::spawn(
        addr,
        ChaosConfig::quiet(77)
            .with_short_writes((1, 3))
            .with_jitter_us((0, 200)),
    )
    .unwrap();

    let (mut client, hello) = Client::connect(proxy.local_addr(), 5, DIM as u32).unwrap();
    assert!(!hello.existing);
    client.send_all(&stream(5, ROWS)).unwrap();
    let snap = client.snapshot().unwrap();
    client.bye().unwrap();
    proxy.shutdown();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(report.net.samples_accepted, ROWS as u64);
    assert_eq!(
        report.net.nacks_sent, 0,
        "re-chunked frames must decode cleanly, never as corruption"
    );
    let reference = reference_snapshots(&blob, 6, ROWS);
    assert_eq!(snap, reference[5].1);
}

/// Blackhole windows held longer than the client's read timeout force
/// reconnects while the proxy still holds (and later releases) buffered
/// frames — the zombie-connection case. The session fence must reject
/// those late frames so the released bytes are never double-applied.
#[test]
fn blackholes_force_reconnects_without_double_apply() {
    const ROWS: usize = 60;
    let blob = checkpoint(47);
    let cfg = ServerConfig::new(FleetConfig::new(2)).with_reference(blob.clone());
    let (addr, stop, handle) = spawn_server(cfg);
    let proxy = ChaosProxy::spawn(
        addr,
        ChaosConfig::quiet(3111).with_blackholes(1.0, (60, 600), (250, 450)),
    )
    .unwrap();

    let policy = ReconnectPolicy {
        max_attempts: 32,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(40),
        seed: 0xD00D,
    };
    let mut rc = ResilientClient::new(proxy.local_addr(), 2, DIM as u32, policy).unwrap();
    // Shorter than every scheduled hold, so a blackholed reply surfaces
    // as a timed-out read and triggers the reconnect path.
    rc.read_timeout = Some(Duration::from_millis(100));
    let rows = stream(2, ROWS);
    let report = rc.run_stream(&rows, 6).unwrap();
    assert_eq!(rc.acked_rows(), ROWS as u64);
    assert!(
        report.reconnects >= 1,
        "every connection blackholes for >= 250 ms against a 100 ms read timeout"
    );
    // For the verification snapshot, wait the holds out instead: the
    // reply blob spans a blackhole window on every connection, so a
    // 100 ms timeout could never see it whole.
    rc.read_timeout = Some(Duration::from_secs(2));
    let snap = rc.snapshot().unwrap();
    let _ = rc.bye();
    proxy.shutdown();

    stop.store(true, Ordering::Relaxed);
    let server_report = handle.join().unwrap();
    assert_eq!(
        server_report.net.samples_accepted, ROWS as u64,
        "zombie frames released after the blackhole must be fenced, not re-applied"
    );
    let reference = reference_snapshots(&blob, 3, ROWS);
    assert_eq!(snap, reference[2].1);
}

/// The fence seen directly, no proxy required: once a session re-HELLOs
/// on a newer connection, a sample frame from the older connection gets a
/// fatal `Superseded` NACK instead of being applied.
#[test]
fn superseded_connection_cannot_feed_after_a_newer_hello() {
    let blob = checkpoint(53);
    let cfg = ServerConfig::new(FleetConfig::new(1)).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);

    let (mut old, hello) = Client::connect(addr, 7, DIM as u32).unwrap();
    assert!(!hello.existing);
    old.send_all(&stream(7, 10)).unwrap();

    // The device "reappears" on a new connection (as it would after a
    // network fault it noticed before the server did).
    let (mut new, hello) = Client::connect(addr, 7, DIM as u32).unwrap();
    assert!(hello.existing);
    assert_eq!(hello.resume_from, 10);

    // The old connection is now fenced: its next batch must be rejected.
    match old.send_batch(&stream(7, 10)[..5 * DIM]) {
        Err(ClientError::Nack { code, .. }) => assert_eq!(code, NackCode::Superseded),
        other => panic!("expected Superseded nack, got {other:?}"),
    }
    // The new connection is unaffected and finishes the stream.
    new.send_all(&stream(7, 15)[10 * DIM..]).unwrap();
    let snap = new.snapshot().unwrap();
    new.bye().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(
        report.net.samples_accepted, 15,
        "the fenced batch must not have been applied"
    );
    assert_eq!(
        DriftPipeline::from_bytes(&snap)
            .unwrap()
            .samples_processed(),
        15
    );
}

/// A connection that trickles handshake bytes slower than the deadline is
/// dropped and counted; a prompt client on the same server is untouched.
#[test]
fn handshake_deadline_drops_half_open_connections() {
    let blob = checkpoint(59);
    let cfg = ServerConfig::new(FleetConfig::new(1))
        .with_reference(blob)
        .with_admission(AdmissionConfig {
            handshake_timeout: Duration::from_millis(150),
            ..AdmissionConfig::default()
        });
    let (addr, stop, handle) = spawn_server(cfg);

    // Half-open: two magic bytes, then silence past the deadline.
    let mut trickler = TcpStream::connect(addr).unwrap();
    trickler.write_all(b"SQ").unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let mut buf = [0u8; 64];
    let gone = matches!(trickler.read(&mut buf), Ok(0) | Err(_));
    assert!(gone, "the trickling connection should have been dropped");

    // A prompt handshake inside the deadline still works.
    let (mut ok, _) = Client::connect(addr, 1, DIM as u32).unwrap();
    ok.ping().unwrap();
    ok.send_all(&stream(1, 5)).unwrap();
    ok.bye().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert!(report.net.handshake_timeouts >= 1, "{:?}", report.net);
    assert_eq!(report.net.samples_accepted, 5);
}

/// The connection cap sheds excess connections with a typed NACK before
/// any handler thread is spawned, and frees as connections close.
#[test]
fn connection_cap_sheds_with_typed_nack() {
    let blob = checkpoint(61);
    let cfg = ServerConfig::new(FleetConfig::new(1))
        .with_reference(blob)
        .with_admission(AdmissionConfig {
            max_connections: 1,
            ..AdmissionConfig::default()
        });
    let (addr, stop, handle) = spawn_server(cfg);

    let (mut first, _) = Client::connect(addr, 1, DIM as u32).unwrap();
    first.ping().unwrap();
    match Client::connect(addr, 2, DIM as u32) {
        Err(ClientError::Nack { code, .. }) => assert_eq!(code, NackCode::AdmissionLimit),
        other => panic!("expected AdmissionLimit nack, got {other:?}"),
    }
    first.bye().unwrap();
    // The slot frees once the server reaps the closed connection.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut readmitted = false;
    while Instant::now() < deadline {
        if let Ok((c, _)) = Client::connect(addr, 2, DIM as u32) {
            let _ = c.bye();
            readmitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(readmitted, "capacity must free after the first client left");

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert!(report.net.admission_rejections >= 1);
}

/// A reconnect storm from one IP is rate-limited by the token bucket:
/// the burst is admitted, the excess is shed with `AdmissionLimit`.
#[test]
fn per_ip_accept_rate_sheds_reconnect_storms() {
    let blob = checkpoint(67);
    let cfg = ServerConfig::new(FleetConfig::new(1))
        .with_reference(blob)
        .with_admission(AdmissionConfig {
            per_ip_accepts_per_sec: 1.0,
            per_ip_accept_burst: 2,
            ..AdmissionConfig::default()
        });
    let (addr, stop, handle) = spawn_server(cfg);

    let mut admitted = 0u32;
    let mut shed = 0u32;
    for dev in 0..8u64 {
        match Client::connect(addr, dev, DIM as u32) {
            Ok((c, _)) => {
                admitted += 1;
                let _ = c.bye();
            }
            Err(ClientError::Nack { code, .. }) => {
                assert_eq!(code, NackCode::AdmissionLimit);
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert!(admitted >= 1, "the burst must be admitted");
    assert!(
        admitted <= 3,
        "8 instant accepts against burst 2 at 1/s must mostly shed (admitted {admitted})"
    );
    assert_eq!(admitted + shed, 8);

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(u64::from(shed), report.net.admission_rejections);
}

/// With a frame pinned in flight by a slow shard, the bytes-in-flight cap
/// turns a second connection's frames into zero-progress BUSY replies —
/// which resolve once the pressure drains, with every row landing.
#[test]
fn bytes_in_flight_cap_sheds_concurrent_frames_as_busy() {
    const SLOW_ROWS: usize = 40;
    const FAST_ROWS: usize = 10;
    let blob = checkpoint(71);
    let injector = FaultInjector::new(vec![Fault::SlowSession {
        session: 0,
        every: 1,
        micros: 10_000,
    }]);
    let fleet_cfg = FleetConfig::new(1)
        .with_queue_capacity(1)
        .with_feed_timeout(Duration::from_secs(5))
        .with_fault_injector(injector);
    let cfg = ServerConfig::new(fleet_cfg)
        .with_reference(blob)
        .with_admission(AdmissionConfig {
            max_bytes_in_flight: 1,
            ..AdmissionConfig::default()
        });
    let (addr, stop, handle) = spawn_server(cfg);

    // Session 0: one big frame the slow shard chews through for ~400 ms,
    // holding bytes in flight the whole time.
    let slow = std::thread::spawn(move || {
        let (mut c, _) = Client::connect(addr, 0, DIM as u32).unwrap();
        c.send_all(&stream(0, SLOW_ROWS)).unwrap();
        c.bye().unwrap();
    });
    std::thread::sleep(Duration::from_millis(100));
    // Session 1 is healthy, but its frames arrive while session 0's is
    // in flight: the cap sheds them as BUSY until the pressure drains.
    let (mut fast, _) = Client::connect(addr, 1, DIM as u32).unwrap();
    fast.send_all(&stream(1, FAST_ROWS)).unwrap();
    let busy_seen = fast.busy_retries;
    fast.bye().unwrap();
    slow.join().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(report.net.samples_accepted, (SLOW_ROWS + FAST_ROWS) as u64);
    assert!(
        busy_seen >= 1,
        "the cap must have shed at least one concurrent frame"
    );
    assert!(report.net.admission_rejections >= 1, "{:?}", report.net);
}
