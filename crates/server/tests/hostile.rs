//! Hostile network input: seeded fuzz-style loops throwing truncated,
//! oversized, bit-flipped, version-skewed and garbage frames at a live
//! server. The server must answer with a typed NACK or drop the
//! connection — never panic — and concurrent well-behaved connections
//! must be completely unaffected (blast radius one), mirroring the fleet
//! fault-injection suite.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_fleet::{FleetConfig, FleetEngine, SessionId};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use seqdrift_server::proto::{encode_frame, FrameType, Message, CRC_LEN};
use seqdrift_server::{Client, ClientError, NackCode, Server, ServerConfig, ServerReport};
use seqdrift_store::crc32::crc32;

const DIM: usize = 4;

fn checkpoint(seed: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from(seed);
    let train: Vec<Vec<Real>> = (0..100)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.3, 0.05);
            x
        })
        .collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 3).with_seed(seed)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(1, DIM).with_window(16), &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

fn stream(session: u64, rows: usize) -> Vec<Real> {
    let mut rng = Rng::seed_from(9000 + session);
    let mut out = Vec::with_capacity(rows * DIM);
    for _ in 0..rows {
        let mut x = vec![0.0; DIM];
        rng.fill_normal(&mut x, 0.3, 0.05);
        out.extend_from_slice(&x);
    }
    out
}

fn spawn_server(
    cfg: ServerConfig,
) -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<ServerReport>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || server.run(move || flag.load(Ordering::Relaxed)));
    (addr, stop, handle)
}

/// A legitimate frame to corrupt: rotates through the client-side types.
fn template_frame(i: u64) -> Vec<u8> {
    match i % 4 {
        0 => Message::Hello {
            dim: DIM as u32,
            scalar_width: core::mem::size_of::<Real>() as u8,
        }
        .encode(i),
        1 => Message::Sample {
            dim: DIM as u32,
            data: vec![0.25; DIM * 3],
        }
        .encode(i),
        2 => Message::Ping.encode(i),
        _ => Message::Drain.encode(i),
    }
}

/// Fires one hostile byte string at the server on a fresh connection and
/// reads whatever comes back until the server closes or 2 s pass. The
/// assertion is simply that the transport round-trips — a panicking
/// server would stop accepting entirely, which the caller checks after
/// the loop.
fn fire(addr: std::net::SocketAddr, bytes: &[u8]) {
    let Ok(mut s) = TcpStream::connect(addr) else {
        panic!("server stopped accepting connections");
    };
    let _ = s.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let _ = s.write_all(bytes);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut sink = Vec::new();
    let _ = s.read_to_end(&mut sink);
}

/// The main seeded fuzz loop: five corruption families, many rounds
/// each, against a server that is simultaneously serving a well-behaved
/// client. The good session's final state must be bit-identical to an
/// in-process run of the same stream.
#[test]
fn hostile_frames_never_panic_and_blast_radius_is_one() {
    const GOOD_ROWS: usize = 80;
    const ROUNDS: u64 = 60;
    let blob = checkpoint(31);
    let cfg = ServerConfig::new(FleetConfig::new(2)).with_reference(blob.clone());
    let (addr, stop, handle) = spawn_server(cfg);

    // Well-behaved client streaming concurrently with the attack.
    let good = std::thread::spawn(move || {
        let (mut c, _) = Client::connect(addr, 0, DIM as u32).unwrap();
        let rows = stream(0, GOOD_ROWS);
        for batch in rows.chunks(5 * DIM) {
            c.send_all(batch).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = c.snapshot().unwrap();
        c.bye().unwrap();
        snap
    });

    let mut rng = Rng::seed_from(4242);
    let mut rand_u64 = move || {
        let mut b = [0.0 as Real; 2];
        rng.fill_normal(&mut b, 0.0, 1.0);
        (b[0].to_bits() as u64) ^ ((b[1].to_bits() as u64) << 32)
    };
    for i in 0..ROUNDS {
        let template = template_frame(i + 1);
        let r = rand_u64();
        match i % 5 {
            // Truncation at a pseudo-random boundary (always at least one
            // byte short).
            0 => {
                let cut = (r as usize) % template.len().max(1);
                fire(addr, &template[..cut]);
            }
            // Oversized length field: must be rejected before allocation.
            1 => {
                let mut f = template;
                let huge = (1u32 << 20) + 1 + (r as u32 % 1000);
                f[16..20].copy_from_slice(&huge.to_le_bytes());
                fire(addr, &f);
            }
            // Single bit flip anywhere in the frame.
            2 => {
                let mut f = template;
                let bit = (r as usize) % (f.len() * 8);
                f[bit / 8] ^= 1 << (bit % 8);
                fire(addr, &f);
            }
            // Version skew with a *clean* CRC: a well-formed frame from a
            // future protocol.
            3 => {
                let mut f = template;
                let v = 2 + (r % 1000) as u16;
                f[4..6].copy_from_slice(&v.to_le_bytes());
                let n = f.len();
                let crc = crc32(&f[..n - CRC_LEN]);
                f[n - CRC_LEN..].copy_from_slice(&crc.to_le_bytes());
                fire(addr, &f);
            }
            // Pure garbage of pseudo-random length.
            _ => {
                let len = 1 + (r as usize) % 256;
                let garbage: Vec<u8> = (0..len)
                    .map(|j| (r.rotate_left(j as u32) & 0xFF) as u8)
                    .collect();
                fire(addr, &garbage);
            }
        }
    }

    let net_snap = good.join().unwrap();

    // The server is still fully alive: a fresh client round-trips.
    let (mut probe, hello) = Client::connect(addr, 0, DIM as u32).unwrap();
    assert!(hello.existing);
    probe.ping().unwrap();
    probe.bye().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert!(
        report.net.nacks_sent >= ROUNDS / 5,
        "hostile frames must have produced NACKs (got {})",
        report.net.nacks_sent
    );
    assert_eq!(
        report.net.samples_accepted, GOOD_ROWS as u64,
        "the good session must have landed every row exactly once"
    );

    // Blast radius one: the good session's state matches an in-process
    // run bit for bit.
    let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
    fleet.create_from_bytes(SessionId(0), &blob).unwrap();
    for row in stream(0, GOOD_ROWS).chunks_exact(DIM) {
        fleet.feed_blocking(SessionId(0), row).unwrap();
    }
    let local_snap = fleet.snapshot(SessionId(0)).unwrap();
    assert_eq!(
        local_snap, net_snap,
        "hostile traffic leaked into the good session's state"
    );
    fleet.shutdown();
}

/// Semantic rejections keep the connection usable; framing corruption
/// kills exactly that connection.
#[test]
fn nack_severity_matches_the_failure_class() {
    let blob = checkpoint(37);
    let cfg = ServerConfig::new(FleetConfig::new(1)).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);

    // Samples before HELLO: typed NACK, connection survives.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let frame = Message::Sample {
            dim: DIM as u32,
            data: vec![0.5; DIM],
        }
        .encode(3);
        s.write_all(&frame).unwrap();
        let reply = seqdrift_server::proto::read_frame(&mut s).unwrap();
        match Message::decode(&reply).unwrap() {
            Message::Nack { code, .. } => assert_eq!(code, NackCode::NotHello),
            other => panic!("expected NotHello nack, got {other:?}"),
        }
        // Same connection still serves a valid handshake afterwards.
        let hello = Message::Hello {
            dim: DIM as u32,
            scalar_width: core::mem::size_of::<Real>() as u8,
        }
        .encode(3);
        s.write_all(&hello).unwrap();
        let reply = seqdrift_server::proto::read_frame(&mut s).unwrap();
        assert!(matches!(
            Message::decode(&reply).unwrap(),
            Message::HelloAck { .. }
        ));
    }

    // A malformed payload inside a valid envelope: NACK, connection
    // survives.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        // Sample payload whose count*dim disagrees with the data length.
        let mut p = Vec::new();
        p.extend_from_slice(&100u32.to_le_bytes());
        p.extend_from_slice(&(DIM as u32).to_le_bytes());
        let bad = encode_frame(FrameType::Sample, 0, 3, &p);
        s.write_all(&bad).unwrap();
        let reply = seqdrift_server::proto::read_frame(&mut s).unwrap();
        match Message::decode(&reply).unwrap() {
            Message::Nack { code, .. } => assert_eq!(code, NackCode::BadPayload),
            other => panic!("expected BadPayload nack, got {other:?}"),
        }
        let ping = Message::Ping.encode(3);
        s.write_all(&ping).unwrap();
        let reply = seqdrift_server::proto::read_frame(&mut s).unwrap();
        assert!(matches!(Message::decode(&reply).unwrap(), Message::Pong));
    }

    // Bad CRC: fatal — NACK then the connection is closed.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut frame = Message::Ping.encode(3);
        let n = frame.len();
        frame[n - 1] ^= 0xFF;
        s.write_all(&frame).unwrap();
        let reply = seqdrift_server::proto::read_frame(&mut s).unwrap();
        match Message::decode(&reply).unwrap() {
            Message::Nack { code, .. } => assert_eq!(code, NackCode::BadCrc),
            other => panic!("expected BadCrc nack, got {other:?}"),
        }
        // Connection is gone: the next request reads EOF.
        let ping = Message::Ping.encode(3);
        let _ = s.write_all(&ping);
        let mut sink = Vec::new();
        assert_eq!(s.read_to_end(&mut sink).unwrap_or(0), 0);
    }

    // A quarantine-free server end: the well-known client path still
    // works after all of the above.
    let (mut c, _) = Client::connect(addr, 7, DIM as u32).unwrap();
    c.send_all(&stream(7, 10)).unwrap();
    c.bye().unwrap();

    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(report.net.samples_accepted, 10);
    assert!(report.net.connections_dropped_protocol >= 1);
}

/// Scalar-width skew (an f64 client against an f32 server, or vice
/// versa) is caught at the handshake, before any sample bytes are
/// misinterpreted.
#[test]
fn scalar_width_mismatch_is_rejected_at_hello() {
    let blob = checkpoint(41);
    let cfg = ServerConfig::new(FleetConfig::new(1)).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let wrong_width = (core::mem::size_of::<Real>() as u8) ^ 0b1100; // 4<->8
    let hello = Message::Hello {
        dim: DIM as u32,
        scalar_width: wrong_width,
    }
    .encode(1);
    s.write_all(&hello).unwrap();
    let reply = seqdrift_server::proto::read_frame(&mut s).unwrap();
    match Message::decode(&reply).unwrap() {
        Message::Nack { code, .. } => assert_eq!(code, NackCode::ScalarWidth),
        other => panic!("expected ScalarWidth nack, got {other:?}"),
    }

    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}

/// A client built for a different dimension is rejected by HELLO with a
/// typed error, as seen through the `Client` API.
#[test]
fn client_surfaces_typed_nacks() {
    let blob = checkpoint(43);
    let cfg = ServerConfig::new(FleetConfig::new(1)).with_reference(blob);
    let (addr, stop, handle) = spawn_server(cfg);
    match Client::connect(addr, 1, (DIM * 2) as u32) {
        Err(ClientError::Nack { code, .. }) => assert_eq!(code, NackCode::DimMismatch),
        other => panic!("expected nack, got {other:?}"),
    }
    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}
